package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"time"

	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/mhash"
	"slicer/internal/obs"
	"slicer/internal/prf"
	"slicer/internal/store"
	"slicer/internal/trapdoor"
	"slicer/internal/wire"
)

// Router-only RPC methods, served next to the cloud methods the router
// proxies. Admin tooling (slicer-cli, the smoke test) drives rebalances and
// inspects placement through these.
const (
	MethodRouterTable     = "router.table"
	MethodRouterShards    = "router.shards"
	MethodRouterRebalance = "router.rebalance"
)

// DefaultBatch is how many counter probes one scatter round trip carries.
// The in-epoch walk stops at the first miss, so a batch trades one RPC for
// at most Batch-1 wasted label lookups on the final round.
const DefaultBatch = 16

// ShardSpec names one shard and where to dial it.
type ShardSpec struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Options configures a Router.
type Options struct {
	// Shards is the static shard list (at least one).
	Shards []ShardSpec
	// DataDir, when set, journals every routing-table epoch and the init's
	// trapdoor key so a restarted router recovers its exact view. Empty
	// runs the router in-memory.
	DataDir string
	// FS overrides the filesystem for DataDir (nil: the real one).
	FS durable.FS
	// Fsync / FsyncInterval select the WAL durability policy.
	Fsync         durable.Policy
	FsyncInterval time.Duration
	// Vnodes is the consistent-hash points per shard for a fresh table
	// (default DefaultVnodes).
	Vnodes int
	// RingEpochs bounds how many past table epochs are retained in memory
	// for inspection via router.table (default 8).
	RingEpochs int
	// Workers bounds token-level search concurrency (0: one per core).
	Workers int
	// Batch is the counter-probe batch size (default DefaultBatch).
	Batch int
	// Registry receives slicer_shard_* series (may be nil).
	Registry *obs.Registry
	// Logger records scatter and rebalance lifecycle events (may be nil).
	Logger *slog.Logger
	// Client tunes the connections the router opens to shards.
	Client wire.ClientOptions
}

// moveWindow is the double-read window of an in-flight range move: labels
// addressed in [lo, hi) are fetched from both src and dst so a search racing
// the move sees every entry no matter which side of the cutover it lands on.
type moveWindow struct {
	lo, hi   uint64
	src, dst string
}

func (w *moveWindow) contains(addr uint64) bool {
	return addr >= w.lo && (w.hi == 0 || addr < w.hi)
}

// routerMetrics is the slicer_shard_* series (all nil-safe when no registry
// is attached).
type routerMetrics struct {
	searches    *obs.Counter
	fanout      *obs.Histogram
	mgets       *obs.CounterVec
	doubleReads *obs.Counter
	epoch       *obs.Gauge
	rebalActive *obs.Gauge
	rebalMoved  *obs.Counter
	rebalGauge  *obs.Gauge
	rebalances  *obs.CounterVec
}

// journalRec is one record of the router's WAL: a routing-table epoch, the
// init's trapdoor public key, or both.
type journalRec struct {
	Table       *Table `json:"table,omitempty"`
	TrapdoorPub []byte `json:"trapdoorPub,omitempty"`
}

// Router fronts N cloud shards as one Cloud: it serves the cloud.* wire
// methods itself, scattering searches and splitting init/update by address,
// so an unmodified user/owner/verifier stack works against it byte-for-byte.
type Router struct {
	srv     *wire.Server
	specs   []ShardSpec
	pools   map[string]*pool
	workers int
	batch   int
	epochs  int
	logger  *slog.Logger
	started time.Time

	mu      sync.RWMutex // guards table, history, tpk, window
	table   *Table
	history []*Table
	tpk     *trapdoor.PublicKey
	window  *moveWindow

	// updateMu serializes owner updates against a move's cutover phase, so
	// the final catch-up export cannot race an update into the source shard
	// after it was drained.
	updateMu sync.Mutex

	// moveGate flushes in-flight fetch rounds before a move deletes the
	// range from its source: a fetch round holds the read side across its
	// placement snapshot and its shard RPCs, and Rebalance takes the write
	// side once between the cutover and the source delete. Without it, a
	// round routed against pre-cutover placement could take its secondary
	// (destination) read before the entry arrived there and its primary
	// (source) read after the delete — finding the label on neither side.
	moveGate sync.RWMutex

	jmu sync.Mutex
	wal *durable.Log // nil without a data dir

	traces *obs.TraceStore
	met    routerMetrics
}

// NewRouter builds a router over a static shard list, recovering any
// journaled routing state from Options.DataDir.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("shard: router needs at least one shard")
	}
	r := &Router{
		srv:     wire.NewServer(),
		specs:   append([]ShardSpec(nil), opts.Shards...),
		pools:   make(map[string]*pool, len(opts.Shards)),
		workers: effectiveWorkers(opts.Workers),
		batch:   opts.Batch,
		epochs:  opts.RingEpochs,
		logger:  opts.Logger,
		started: time.Now(),
	}
	if r.batch <= 0 {
		r.batch = DefaultBatch
	}
	if r.epochs <= 0 {
		r.epochs = 8
	}
	if r.logger == nil {
		r.logger = obs.Nop()
	}
	ids := make([]string, 0, len(opts.Shards))
	for _, s := range opts.Shards {
		if s.ID == "" || s.Addr == "" {
			return nil, fmt.Errorf("shard: spec needs both ID and address")
		}
		if _, dup := r.pools[s.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", s.ID)
		}
		r.pools[s.ID] = newPool(s.ID, s.Addr, opts.Client)
		ids = append(ids, s.ID)
	}
	if err := r.recover(opts); err != nil {
		return nil, err
	}
	if r.table == nil {
		t, err := NewTable(ids, opts.Vnodes)
		if err != nil {
			return nil, err
		}
		if err := r.journal(journalRec{Table: t}); err != nil {
			return nil, err
		}
		r.table = t
	}
	for _, id := range r.table.Shards() {
		if _, ok := r.pools[id]; !ok {
			return nil, fmt.Errorf("shard: recovered table references unknown shard %q", id)
		}
	}
	r.registerMetrics(opts.Registry)
	r.traces = obs.NewTraceStore(0)
	r.srv.SetTraceStore(r.traces)
	r.srv.HandleMeta(wire.MethodCloudInit, r.handleInit)
	r.srv.HandleMeta(wire.MethodCloudUpdate, r.handleUpdate)
	r.srv.HandleMeta(wire.MethodCloudSearch, r.handleSearch)
	r.srv.Handle(wire.MethodCloudStats, r.handleStats)
	r.srv.Handle(MethodRouterTable, r.handleTable)
	r.srv.Handle(MethodRouterShards, r.handleShards)
	r.srv.HandleTraced(MethodRouterRebalance, r.handleRebalance)
	return r, nil
}

// recover replays the router's WAL (if any): the newest table record and
// trapdoor key win, exactly the state this router last acknowledged.
func (r *Router) recover(opts Options) error {
	if opts.DataDir == "" {
		return nil
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = durable.OS
	}
	rec, err := durable.Recover(fsys, opts.DataDir)
	if err != nil {
		return err
	}
	for _, e := range rec.Entries {
		var jr journalRec
		if err := json.Unmarshal(e, &jr); err != nil {
			r.logger.Warn("skipping unreplayable router WAL record", "err", err)
			continue
		}
		if jr.Table != nil {
			if err := jr.Table.Validate(); err != nil {
				return err
			}
			r.pushTable(jr.Table)
		}
		if len(jr.TrapdoorPub) > 0 {
			tpk, err := trapdoor.UnmarshalPublic(jr.TrapdoorPub)
			if err != nil {
				return fmt.Errorf("shard: recover trapdoor key: %w", err)
			}
			r.tpk = tpk
		}
	}
	wal, err := durable.OpenLog(fsys, opts.DataDir, durable.LogOptions{
		Fsync:         opts.Fsync,
		FsyncInterval: opts.FsyncInterval,
		Start:         rec.NextIndex,
	})
	if err != nil {
		return err
	}
	r.wal = wal
	return nil
}

// pushTable installs a table and retains the previous epoch in the bounded
// history. Caller holds r.mu or runs before the server listens.
func (r *Router) pushTable(t *Table) {
	if r.table != nil {
		r.history = append(r.history, r.table)
		if max := r.epochs; len(r.history) > max {
			r.history = r.history[len(r.history)-max:]
		}
	}
	r.table = t
	r.met.epoch.Set(float64(t.Epoch))
}

// journal appends one record to the router WAL (no-op without a data dir).
func (r *Router) journal(rec journalRec) error {
	b, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	r.jmu.Lock()
	defer r.jmu.Unlock()
	if r.wal == nil {
		return nil
	}
	if _, err := r.wal.Append(b); err != nil {
		return fmt.Errorf("shard: journal: %w", err)
	}
	return nil
}

func (r *Router) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.srv.SetMetrics(reg, "router")
	r.met.searches = reg.Counter("slicer_shard_searches_total",
		"Scatter-gather searches served by the router.")
	r.met.fanout = reg.HistogramBuckets("slicer_shard_scatter_fanout",
		"Distinct shards contacted per search token.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
	r.met.mgets = reg.CounterVecOpts("slicer_shard_mget_total",
		"Batched label fetches issued, by shard.",
		[]string{"shard"}, obs.VecOpts{MaxCardinality: 128})
	r.met.doubleReads = reg.Counter("slicer_shard_double_reads_total",
		"Label fetches duplicated to both sides of a move window.")
	r.met.epoch = reg.Gauge("slicer_shard_table_epoch",
		"Current routing-table epoch.")
	r.met.rebalActive = reg.Gauge("slicer_shard_rebalance_active",
		"1 while a range move is in flight.")
	r.met.rebalMoved = reg.Counter("slicer_shard_rebalance_entries_total",
		"Index entries shipped by range moves since start.")
	r.met.rebalGauge = reg.Gauge("slicer_shard_rebalance_progress",
		"Fraction of the current range move's entries shipped (0 when idle).")
	r.met.rebalances = reg.CounterVecOpts("slicer_shard_rebalances_total",
		"Range moves finished, by outcome.",
		[]string{"outcome"}, obs.VecOpts{MaxCardinality: 4})
	r.met.epoch.Set(float64(r.currentTable().Epoch))
}

// Server exposes the underlying RPC server (logger, idle timeout, traces).
func (r *Router) Server() *wire.Server { return r.srv }

// Traces exposes the router's propagated-trace store for admin endpoints.
func (r *Router) Traces() *obs.TraceStore { return r.traces }

// Listen binds the router and returns its address.
func (r *Router) Listen(addr string) (string, error) { return r.srv.Listen(addr) }

// Close shuts the router down: the RPC server, every shard connection, and
// the WAL.
func (r *Router) Close() error {
	err := r.srv.Close()
	for _, p := range r.pools {
		p.close()
	}
	r.jmu.Lock()
	defer r.jmu.Unlock()
	if r.wal != nil {
		if serr := r.wal.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := r.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		r.wal = nil
	}
	return err
}

// Table returns a copy of the current routing table.
func (r *Router) Table() *Table { return r.currentTable().Clone() }

func (r *Router) currentTable() *Table {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table
}

// view snapshots the placement state one scatter batch routes against.
func (r *Router) view() (*Table, *moveWindow) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table, r.window
}

func (r *Router) pool(id string) (*pool, error) {
	p, ok := r.pools[id]
	if !ok {
		return nil, fmt.Errorf("shard: no shard %q", id)
	}
	return p, nil
}

// sortedIDs returns every configured shard ID, sorted — the deterministic
// iteration order for fan-outs and error selection.
func (r *Router) sortedIDs() []string {
	ids := make([]string, 0, len(r.pools))
	for id := range r.pools {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// splitIndex partitions an index by the table's address placement. Every
// configured shard gets a partition (possibly empty) so the replicated ADS
// reaches shards that own no entries yet.
func (r *Router) splitIndex(t *Table, ix *store.Index) map[string]*store.Index {
	parts := make(map[string]*store.Index, len(r.pools))
	for id := range r.pools {
		parts[id] = store.NewIndex()
	}
	ix.Range(func(l store.Label, d store.Payload) bool {
		_ = parts[t.Owner(l)].Put(l, d) // Put only fails on duplicate labels; Range yields each label once
		return true
	})
	return parts
}

// broadcast runs fn against every configured shard concurrently and returns
// the error of the lowest shard ID that failed — deterministic regardless of
// scheduling, mirroring core's first-error semantics.
func (r *Router) broadcast(fn func(id string, p *pool) error) error {
	ids := r.sortedIDs()
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			errs[i] = fn(id, r.pools[id])
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// handleInit splits the owner's full index by address and initializes every
// shard with its partition plus the full replicated ADS. The router itself
// keeps only the trapdoor public key (journaled, so a restart can still walk
// token chains).
func (r *Router) handleInit(params json.RawMessage, tr *obs.Trace, _ wire.Meta) (any, error) {
	var msg wire.CloudInitMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	tpk, err := trapdoor.UnmarshalPublic(msg.TrapdoorPub)
	if err != nil {
		return nil, fmt.Errorf("wire: trapdoor key: %w", err)
	}
	ix, err := store.UnmarshalIndex(msg.Index)
	if err != nil {
		return nil, fmt.Errorf("wire: index: %w", err)
	}
	table := r.currentTable()
	parts := r.splitIndex(table, ix)
	err = r.broadcast(func(id string, p *pool) error {
		per := msg // copy; per-shard index partition, shared ADS fields
		per.Index = parts[id].Marshal()
		return p.call(func(cc *wire.CloudClient) error {
			return cc.Client().CallTraced(wire.MethodCloudInit, &per, nil, tr, "scatter:"+id)
		})
	})
	if err != nil {
		return nil, err
	}
	// Journal before acknowledging: a restarted router must still hold the
	// key that lets it walk trapdoor chains for this deployment.
	if err := r.journal(journalRec{TrapdoorPub: msg.TrapdoorPub}); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.tpk = tpk
	r.mu.Unlock()
	r.logger.Info("initialized shards", "entries", ix.Len(), "shards", len(parts))
	return map[string]bool{"ok": true}, nil
}

// handleUpdate splits an owner delta by address; every shard receives the
// full new primes and accumulation value (the ADS replicates) plus its slice
// of the index delta. All shards journal-then-ack before the router acks.
func (r *Router) handleUpdate(params json.RawMessage, tr *obs.Trace, _ wire.Meta) (any, error) {
	r.updateMu.Lock()
	defer r.updateMu.Unlock()
	var msg wire.UpdateMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	ix, err := store.UnmarshalIndex(msg.Index)
	if err != nil {
		return nil, fmt.Errorf("wire: index delta: %w", err)
	}
	table := r.currentTable()
	parts := r.splitIndex(table, ix)
	err = r.broadcast(func(id string, p *pool) error {
		per := msg
		per.Index = parts[id].Marshal()
		return p.call(func(cc *wire.CloudClient) error {
			return cc.Client().CallTraced(wire.MethodCloudUpdate, &per, nil, tr, "scatter:"+id)
		})
	})
	if err != nil {
		return nil, err
	}
	return map[string]bool{"ok": true}, nil
}

func (r *Router) trapdoorPub() (*trapdoor.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.tpk == nil {
		// Mirror the single-cloud server's wording: to clients the router IS
		// the cloud.
		return nil, errors.New("wire: cloud not initialized")
	}
	return r.tpk, nil
}

// handleSearch is the scatter-gather search path: per token, the router
// walks the trapdoor chain itself (it holds the token's PRF keys and the
// public trapdoor key — both already in the cloud trust domain), batch-probes
// counters across the owning shards, unmasks in exact single-cloud order,
// and delegates VO generation for the merged result set to one shard.
func (r *Router) handleSearch(params json.RawMessage, tr *obs.Trace, _ wire.Meta) (any, error) {
	tpk, err := r.trapdoorPub()
	if err != nil {
		return nil, err
	}
	var req core.SearchRequest
	if err := json.Unmarshal(params, &req); err != nil {
		return nil, err
	}
	r.met.searches.Inc()
	results := make([]core.TokenResult, len(req.Tokens))
	err = forEachIndexed(len(req.Tokens), r.workers, func(i int) error {
		res, err := r.searchToken(tpk, req.Tokens[i], tr)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &core.SearchResponse{Results: results}, nil
}

func (r *Router) searchToken(tpk *trapdoor.PublicKey, tok core.SearchToken, tr *obs.Trace) (core.TokenResult, error) {
	endCollect := tr.Span("router.collect")
	er, touched, err := r.collectToken(tpk, tok, tr)
	if err != nil {
		return core.TokenResult{}, err
	}
	endCollect()
	r.met.fanout.Observe(float64(len(touched)))
	endWitness := tr.Span("router.witness")
	vo, err := r.delegateWitness(tok, er, tr)
	if err != nil {
		return core.TokenResult{}, err
	}
	endWitness()
	return core.TokenResult{Token: tok, ER: er, Witness: vo}, nil
}

// collectToken reproduces core.Cloud.collectResults over the shard fleet:
// same label/mask derivations, same walk order, same first-miss epoch
// termination — so the unmasked result list is byte-identical to what a
// single cloud holding the union index would return. It reports the set of
// shards contacted.
func (r *Router) collectToken(tpk *trapdoor.PublicKey, tok core.SearchToken, tr *obs.Trace) ([][]byte, map[string]bool, error) {
	lk, err := prf.KeyFromBytes(tok.G1)
	if err != nil {
		return nil, nil, fmt.Errorf("token G1: %w", err)
	}
	dk, err := prf.KeyFromBytes(tok.G2)
	if err != nil {
		return nil, nil, fmt.Errorf("token G2: %w", err)
	}
	labelEval := lk.NewEvaluator()
	maskEval := dk.NewEvaluator()
	touched := make(map[string]bool)
	var er [][]byte
	t := tok.Trapdoor
	labels := make([]store.Label, r.batch)
	for i := tok.Epoch; i >= 0; i-- {
	epoch:
		for base := uint64(0); ; base += uint64(r.batch) {
			for k := range labels {
				l, err := store.LabelFromBytes(labelEval.EvalWithCounter(t, base+uint64(k)))
				if err != nil {
					return nil, nil, err
				}
				labels[k] = l
			}
			payloads, found, err := r.fetchLabels(labels, touched, tr)
			if err != nil {
				return nil, nil, err
			}
			for k := range labels {
				if !found[k] {
					break epoch // in-epoch walk ends at the first missing counter
				}
				mask := maskEval.EvalWithCounter(t, base+uint64(k))
				d := payloads[k]
				res := make([]byte, store.EntrySize)
				for b := range res {
					res[b] = mask[b] ^ d[b]
				}
				er = append(er, res)
			}
		}
		if i > 0 {
			t, err = tpk.Forward(t)
			if err != nil {
				return nil, nil, fmt.Errorf("walk trapdoor chain: %w", err)
			}
		}
	}
	return er, touched, nil
}

// shardBatch is the slice of one fetch round addressed to one shard.
type shardBatch struct {
	labels [][]byte
	idxs   []int
}

func addTo(m map[string]*shardBatch, id string, k int, l store.Label) {
	b := m[id]
	if b == nil {
		b = &shardBatch{}
		m[id] = b
	}
	b.labels = append(b.labels, append([]byte(nil), l[:]...))
	b.idxs = append(b.idxs, k)
}

// fetchLabels resolves one batch of labels across the owning shards,
// double-reading any label inside an active move window. Results are
// index-aligned with labels; a label found on both sides of a move window
// resolves to the primary owner's copy (payloads are immutable, so either
// copy is the same bytes — the preference only pins determinism).
func (r *Router) fetchLabels(labels []store.Label, touched map[string]bool, tr *obs.Trace) ([][]byte, []bool, error) {
	r.moveGate.RLock()
	defer r.moveGate.RUnlock()
	table, window := r.view()
	prim := make(map[string]*shardBatch)
	sec := make(map[string]*shardBatch)
	for k, l := range labels {
		addr := store.Addr(l)
		owner := table.Lookup(addr)
		addTo(prim, owner, k, l)
		if window != nil && window.contains(addr) {
			other := window.src
			if owner == window.src {
				other = window.dst
			}
			if other != owner {
				addTo(sec, other, k, l)
				r.met.doubleReads.Inc()
			}
		}
	}
	// One RPC per (shard, role); both roles to the same shard are distinct
	// batches but can share the fan-out round.
	type job struct {
		id      string
		batch   *shardBatch
		primary bool
	}
	var jobs []job
	for _, id := range sortedKeys(prim) {
		jobs = append(jobs, job{id: id, batch: prim[id], primary: true})
	}
	for _, id := range sortedKeys(sec) {
		jobs = append(jobs, job{id: id, batch: sec[id], primary: false})
	}
	replies := make([]*wire.MGetReply, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			jb := jobs[j]
			p, err := r.pool(jb.id)
			if err != nil {
				errs[j] = err
				return
			}
			r.met.mgets.WithLabelValues(jb.id).Inc()
			errs[j] = p.call(func(cc *wire.CloudClient) error {
				var reply wire.MGetReply
				if err := cc.Client().CallTraced(wire.MethodCloudMGet,
					&wire.MGetMsg{Labels: jb.batch.labels}, &reply, tr, "scatter:"+jb.id); err != nil {
					return err
				}
				if len(reply.Found) != len(jb.batch.labels) || len(reply.Payloads) != len(jb.batch.labels) {
					return fmt.Errorf("shard: mget reply misaligned from %s", jb.id)
				}
				replies[j] = &reply
				return nil
			})
		}(j)
	}
	wg.Wait()
	for j := range jobs {
		touched[jobs[j].id] = true
		if errs[j] != nil {
			return nil, nil, errs[j]
		}
	}
	payloads := make([][]byte, len(labels))
	found := make([]bool, len(labels))
	// Secondary (move-window) replies first, primary second: the primary
	// owner's copy wins when both sides hold the label.
	for pass := 0; pass < 2; pass++ {
		primary := pass == 1
		for j, jb := range jobs {
			if jb.primary != primary {
				continue
			}
			for bi, k := range jb.batch.idxs {
				if replies[j].Found[bi] {
					found[k] = true
					payloads[k] = replies[j].Payloads[bi]
				}
			}
		}
	}
	return payloads, found, nil
}

func sortedKeys(m map[string]*shardBatch) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// delegateWitness derives the merged result set's prime representative and
// has one deterministically-chosen shard produce the membership witness.
// Every shard holds the full replicated ADS, so any choice yields the same
// bytes; hashing the prime spreads the modexp load.
func (r *Router) delegateWitness(tok core.SearchToken, er [][]byte, tr *obs.Trace) ([]byte, error) {
	x := core.TokenPrime(tok, mhash.OfMultiset(er))
	ids := r.sortedIDs()
	pick := ids[new(big.Int).Mod(x, big.NewInt(int64(len(ids)))).Int64()]
	var vo []byte
	err := r.pools[pick].call(func(cc *wire.CloudClient) error {
		var reply wire.WitnessReply
		if err := cc.Client().CallTraced(wire.MethodCloudWitness,
			&wire.WitnessMsg{X: x.Bytes()}, &reply, tr, "scatter:"+pick); err != nil {
			return err
		}
		vo = reply.VO
		return nil
	})
	return vo, err
}

// handleStats aggregates the fleet into one CloudStats, so clients (and
// slicer-cli status) written against a single cloud keep working: entry and
// byte counts sum across shards, while the replicated ADS reports the
// maximum (each shard holds a full copy).
func (r *Router) handleStats(json.RawMessage) (any, error) {
	per, err := r.ShardStats()
	if err != nil {
		return nil, err
	}
	agg := &wire.CloudStats{UptimeSeconds: time.Since(r.started).Seconds()}
	var reached bool
	for _, st := range per {
		if st.Err != "" || st.Stats == nil {
			continue
		}
		reached = true
		agg.IndexEntries += st.Stats.IndexEntries
		agg.IndexBytes += st.Stats.IndexBytes
		agg.SearchCalls += st.Stats.SearchCalls
		if st.Stats.Primes > agg.Primes {
			agg.Primes = st.Stats.Primes
		}
		if st.Stats.ADSBytes > agg.ADSBytes {
			agg.ADSBytes = st.Stats.ADSBytes
		}
	}
	if !reached {
		return nil, errors.New("shard: no shard reachable")
	}
	return agg, nil
}

// ShardStatus is one shard's view in router.shards: its stats, or the error
// that kept the router from fetching them.
type ShardStatus struct {
	ID    string           `json:"id"`
	Addr  string           `json:"addr"`
	Stats *wire.CloudStats `json:"stats,omitempty"`
	Err   string           `json:"err,omitempty"`
}

// ShardStats fetches every shard's stats concurrently. Unreachable shards
// report their error instead of failing the whole listing.
func (r *Router) ShardStats() ([]ShardStatus, error) {
	ids := r.sortedIDs()
	out := make([]ShardStatus, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		out[i] = ShardStatus{ID: id}
		for _, sp := range r.specs {
			if sp.ID == id {
				out[i].Addr = sp.Addr
			}
		}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			err := r.pools[id].call(func(cc *wire.CloudClient) error {
				st, err := cc.Stats()
				if err != nil {
					return err
				}
				out[i].Stats = st
				return nil
			})
			if err != nil {
				out[i].Err = err.Error()
			}
		}(i, id)
	}
	wg.Wait()
	return out, nil
}

// TableInfo is the router.table reply: the live table plus how many past
// epochs the router retains.
type TableInfo struct {
	Table          *Table `json:"table"`
	RetainedEpochs int    `json:"retainedEpochs"`
}

func (r *Router) handleTable(json.RawMessage) (any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return &TableInfo{Table: r.table.Clone(), RetainedEpochs: len(r.history)}, nil
}

func (r *Router) handleShards(json.RawMessage) (any, error) {
	return r.ShardStats()
}

// effectiveWorkers resolves a worker count: <=0 means one per core.
func effectiveWorkers(configured int) int {
	if configured <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return configured
}

// forEachIndexed mirrors core's parallel-for: bounded workers, results
// written by index, and the returned error is the lowest failing index's —
// so scatter-gather error selection matches a single cloud exactly.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, minFail int64
	minFail = int64(n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return int(i)
	}
	fail := func(i int) {
		mu.Lock()
		if int64(i) < minFail {
			minFail = int64(i)
		}
		mu.Unlock()
	}
	skip := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return int64(i) > minFail
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= n {
					return
				}
				if skip(i) {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					fail(i)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
