package shard

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"slicer/internal/core"
	"slicer/internal/wire"
	"slicer/internal/workload"
)

// fixture is one routed deployment next to the single cloud it must be
// byte-identical to.
type fixture struct {
	owner  *core.Owner
	user   *core.User
	db     []core.Record
	single *core.Cloud       // reference: one cloud holding the union index
	router *Router           // embedded router over n shards
	cli    *wire.CloudClient // a client speaking to the router as if it were one cloud
	addr   string            // the router's listen address
}

// newFixture boots n shard cloud servers and a router, initializes them from
// one owner, and builds the reference single cloud from the same state.
func newFixture(t testing.TB, nShards, nRecords int, seed int64, opts Options) *fixture {
	t.Helper()
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	db := workload.Generate(workload.Config{N: nRecords, Bits: 8, Seed: seed})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	single, err := core.NewCloud(owner.CloudInit(built.Index), core.WitnessCached)
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	var specs []ShardSpec
	for i := 0; i < nShards; i++ {
		srv := wire.NewCloudServer()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("shard Listen: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, ShardSpec{ID: fmt.Sprintf("s%d", i+1), Addr: addr})
	}
	opts.Shards = specs
	router, err := NewRouter(opts)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	addr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router Listen: %v", err)
	}
	t.Cleanup(func() { router.Close() })
	cli, err := wire.DialCloud(addr)
	if err != nil {
		t.Fatalf("DialCloud(router): %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := cli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init via router: %v", err)
	}
	return &fixture{owner: owner, user: user, db: db, single: single, router: router, cli: cli, addr: addr}
}

// mustEqualResponses asserts byte-identical JSON encodings — the exact bytes
// a wire client receives.
func mustEqualResponses(t testing.TB, got, want *core.SearchResponse) {
	t.Helper()
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal routed response: %v", err)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal single response: %v", err)
	}
	if string(gj) != string(wj) {
		t.Fatalf("routed response differs from single cloud:\n routed: %s\n single: %s", gj, wj)
	}
}

func (f *fixture) checkQuery(t testing.TB, q core.Query) {
	t.Helper()
	req, err := f.user.Token(q)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	routed, routedErr := f.cli.Search(req)
	want, wantErr := f.single.Search(req)
	if (routedErr == nil) != (wantErr == nil) {
		t.Fatalf("error divergence: routed=%v single=%v", routedErr, wantErr)
	}
	if wantErr != nil {
		if routedErr.Error() != wantErr.Error() {
			t.Fatalf("error text divergence: routed=%q single=%q", routedErr, wantErr)
		}
		return
	}
	mustEqualResponses(t, routed, want)
	if err := core.VerifyResponse(f.owner.AccumulatorPub(), f.owner.Ac(), req, routed); err != nil {
		t.Fatalf("routed response failed public verification: %v", err)
	}
	ids, err := f.user.Decrypt(routed)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	want2 := workload.Answer(f.db, q)
	if len(ids) != len(want2) {
		t.Fatalf("routed search returned %d ids, want %d", len(ids), len(want2))
	}
}

// TestScatterGatherEquivalence is the property test of the acceptance
// criteria: for shard counts 1, 2, 3 and 7, routed searches are
// byte-identical to a single cloud and pass unmodified public verification.
func TestScatterGatherEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			f := newFixture(t, n, 50, int64(100+n), Options{Workers: 4})
			rng := rand.New(rand.NewSource(int64(n)))
			queries := []core.Query{
				core.Less(1),
				core.Less(128),
				core.Less(255),
				core.Greater(10),
				core.Equal(f.db[0].Attrs[0].Value),
				core.Equal(201), // likely no match / unknown keyword path
			}
			for i := 0; i < 4; i++ {
				queries = append(queries, core.Less(uint64(rng.Intn(256))))
			}
			for _, q := range queries {
				f.checkQuery(t, q)
			}
		})
	}
}

// TestRoutedUpdateEquivalence inserts through the router and re-checks
// equivalence: the delta must split by address while the ADS replicates.
func TestRoutedUpdateEquivalence(t *testing.T) {
	f := newFixture(t, 3, 40, 9, Options{Workers: 4})
	for i := 0; i < 3; i++ {
		up, err := f.owner.Insert([]core.Record{core.NewRecord(uint64(5000+i), uint64(40+i))})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := f.cli.Update(up); err != nil {
			t.Fatalf("Update via router: %v", err)
		}
		if err := f.single.ApplyUpdate(up); err != nil {
			t.Fatalf("ApplyUpdate: %v", err)
		}
		f.db = append(f.db, core.NewRecord(uint64(5000+i), uint64(40+i)))
	}
	f.user.UpdateStates(f.owner.StatesSnapshot())
	f.checkQuery(t, core.Less(255))
	f.checkQuery(t, core.Equal(41))
}

// TestRebalanceEquivalence moves every arc of one shard onto another and
// re-checks byte-identical search before, during is covered by the race
// test, and after the move.
func TestRebalanceEquivalence(t *testing.T) {
	f := newFixture(t, 3, 60, 17, Options{Workers: 4})
	f.checkQuery(t, core.Less(200))
	table := f.router.Table()
	src := table.Shards()[0]
	dst := table.Shards()[1]
	for _, rg := range table.Ranges(src) {
		if _, err := f.router.Rebalance(rg[0], rg[1], dst, nil); err != nil {
			t.Fatalf("Rebalance[%#x,%#x): %v", rg[0], rg[1], err)
		}
	}
	after := f.router.Table()
	if after.Epoch == table.Epoch {
		t.Fatal("rebalance did not advance the table epoch")
	}
	for _, rg := range table.Ranges(src) {
		if got := after.Lookup(rg[0]); got != dst {
			t.Fatalf("moved arc %#x still owned by %q", rg[0], got)
		}
	}
	f.checkQuery(t, core.Less(200))
	f.checkQuery(t, core.Less(1))
	f.checkQuery(t, core.Greater(0))
}

// TestSearchDuringRebalance is the race test: searches hammer the router
// while ranges move between shards; zero searches may fail and every
// response must verify. Run with -race.
func TestSearchDuringRebalance(t *testing.T) {
	f := newFixture(t, 3, 60, 23, Options{Workers: 4})
	req, err := f.user.Token(core.Less(200))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	want, err := f.single.Search(req)
	if err != nil {
		t.Fatalf("single Search: %v", err)
	}
	wantJSON, _ := json.Marshal(want)

	var stop atomic.Bool
	var searches, failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := wire.DialCloud(f.addr)
			if err != nil {
				failures.Add(1)
				t.Errorf("dial: %v", err)
				return
			}
			defer cli.Close()
			for !stop.Load() {
				resp, err := cli.Search(req)
				searches.Add(1)
				if err != nil {
					failures.Add(1)
					t.Errorf("search during rebalance: %v", err)
					return
				}
				got, _ := json.Marshal(resp)
				if string(got) != string(wantJSON) {
					failures.Add(1)
					t.Error("search during rebalance diverged from single cloud")
					return
				}
			}
		}()
	}
	table := f.router.Table()
	ids := table.Shards()
	// Shuffle every arc of s1 to s2, then every arc of s2 to s3.
	moves := 0
	for hop := 0; hop < 2 && !t.Failed(); hop++ {
		src, dst := ids[hop%len(ids)], ids[(hop+1)%len(ids)]
		cur := f.router.Table()
		for _, rg := range cur.Ranges(src) {
			if _, err := f.router.Rebalance(rg[0], rg[1], dst, nil); err != nil {
				t.Errorf("Rebalance: %v", err)
				break
			}
			moves++
		}
	}
	stop.Store(true)
	wg.Wait()
	if moves == 0 {
		t.Fatal("no moves executed")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d in-flight searches failed", failures.Load(), searches.Load())
	}
	t.Logf("%d searches stayed correct across %d range moves", searches.Load(), moves)
}

// FuzzScatterGatherEquivalence drives random datasets, shard counts and
// queries through the router and the reference cloud; any byte divergence
// or verification failure is a crash.
func FuzzScatterGatherEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(20), int64(1), uint8(100), uint8(0))
	f.Add(uint8(1), uint8(5), int64(2), uint8(0), uint8(1))
	f.Add(uint8(7), uint8(30), int64(3), uint8(255), uint8(2))
	f.Add(uint8(2), uint8(12), int64(4), uint8(42), uint8(0))
	shardCounts := []int{1, 2, 3, 7}
	f.Fuzz(func(t *testing.T, shardSel, nRec uint8, seed int64, val, op uint8) {
		nShards := shardCounts[int(shardSel)%len(shardCounts)]
		n := 5 + int(nRec)%40
		fx := newFixture(t, nShards, n, seed, Options{Workers: 2, Batch: 4})
		var q core.Query
		switch op % 3 {
		case 0:
			q = core.Less(uint64(val%255) + 1)
		case 1:
			q = core.Greater(uint64(val))
		default:
			q = core.Equal(uint64(val))
		}
		fx.checkQuery(t, q)
	})
}
