package shard

import (
	"encoding/json"
	"fmt"
	"time"

	"slicer/internal/obs"
	"slicer/internal/wire"
)

// movePageSize is how many entries one export/import page carries.
const movePageSize = 256

// moveRetries bounds how often one page operation is retried against a
// shard that is down (the smoke test kill -9s a shard mid-move and expects
// the move to complete once it is restarted).
const (
	moveRetries = 120
	moveBackoff = 250 * time.Millisecond
)

// RebalanceMsg asks the router to move the address range [lo, hi) — hi == 0
// meaning 2^64 — onto shard To.
type RebalanceMsg struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	To string `json:"to"`
}

// MoveStats reports a completed range move.
type MoveStats struct {
	// Source is the shard that owned the range before the move.
	Source string `json:"source"`
	// Moved is how many entries shipped to the destination (catch-up pages
	// may recount entries the first drain already shipped).
	Moved int `json:"moved"`
	// Removed is how many entries the source deleted after the cutover.
	Removed int `json:"removed"`
	// Pages is how many export pages the move took.
	Pages int `json:"pages"`
	// Epoch is the routing-table epoch the cutover produced.
	Epoch uint64 `json:"epoch"`
}

func (r *Router) handleRebalance(params json.RawMessage, tr *obs.Trace) (any, error) {
	var msg RebalanceMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	return r.Rebalance(msg.Lo, msg.Hi, msg.To, tr)
}

// retryPage runs one page operation, retrying transport faults while the
// peer shard is down or restarting. Application errors fail immediately.
func retryPage(p *pool, fn func(cc *wire.CloudClient) error) error {
	var err error
	for attempt := 0; attempt < moveRetries; attempt++ {
		if err = p.call(fn); err == nil || !transient(err) {
			return err
		}
		time.Sleep(moveBackoff)
	}
	return fmt.Errorf("shard: %s unreachable: %w", p.id, err)
}

// Rebalance moves the address range [lo, hi) — hi == 0 meaning 2^64 — onto
// shard dst while both shards keep serving:
//
//  1. A double-read window opens, so searches racing the move resolve
//     range labels against both shards.
//  2. Drain: the source streams the range page by page into the
//     destination, which journals every page before acknowledging it.
//  3. Cutover: with owner updates briefly held, one catch-up pass ships
//     entries that raced into the source during the drain, then the
//     routing table advances one epoch (journaled before it is applied).
//  4. The source deletes the range (journaled) and the window closes.
//
// Imports are idempotent and deletes re-run clean, so a move interrupted by
// a crash — of a shard or of the router — can simply be issued again.
func (r *Router) Rebalance(lo, hi uint64, dst string, tr *obs.Trace) (*MoveStats, error) {
	if _, ok := r.pools[dst]; !ok {
		return nil, fmt.Errorf("shard: no shard %q", dst)
	}
	// Resolve the single current owner of the range and open the window.
	r.mu.Lock()
	if r.window != nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("shard: a range move is already in flight")
	}
	table := r.table
	src, err := rangeOwner(table, lo, hi)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	if src == dst {
		r.mu.Unlock()
		return &MoveStats{Source: src, Epoch: table.Epoch}, nil
	}
	r.window = &moveWindow{lo: lo, hi: hi, src: src, dst: dst}
	r.mu.Unlock()
	r.met.rebalActive.Set(1)
	defer func() {
		r.mu.Lock()
		r.window = nil
		r.mu.Unlock()
		r.met.rebalActive.Set(0)
		r.met.rebalGauge.Set(0)
	}()
	r.logger.Info("rebalance start", "lo", lo, "hi", hi, "from", src, "to", dst)

	stats := &MoveStats{Source: src}
	total := r.rangeSizeEstimate(src)
	drain := func() error {
		var cursor []byte
		for {
			page, err := r.exportPage(src, lo, hi, cursor, tr)
			if err != nil {
				return err
			}
			if len(page.Labels) == 0 {
				return nil
			}
			if err := r.importPage(dst, page, tr); err != nil {
				return err
			}
			stats.Moved += len(page.Labels)
			stats.Pages++
			r.met.rebalMoved.Add(uint64(len(page.Labels)))
			if total > 0 {
				frac := float64(stats.Moved) / float64(total)
				if frac > 1 {
					frac = 1
				}
				r.met.rebalGauge.Set(frac)
			}
			if page.Next == nil {
				return nil
			}
			cursor = page.Next
		}
	}
	if err := drain(); err != nil {
		r.met.rebalances.WithLabelValues("error").Inc()
		return nil, err
	}

	// Cutover: hold updates, catch up stragglers, bump the epoch.
	r.updateMu.Lock()
	err = drain()
	if err == nil {
		var next *Table
		next, err = r.currentTable().Move(lo, hi, dst)
		if err == nil {
			// Journal-then-apply: an acknowledged epoch survives a router
			// restart.
			if err = r.journal(journalRec{Table: next}); err == nil {
				r.mu.Lock()
				r.pushTable(next)
				stats.Epoch = next.Epoch
				r.mu.Unlock()
			}
		}
	}
	r.updateMu.Unlock()
	if err != nil {
		r.met.rebalances.WithLabelValues("error").Inc()
		return nil, err
	}

	// Barrier before the source delete: flush every fetch round that could
	// still read the source as its primary. A round that snapshotted the
	// pre-cutover table may have already taken its destination (secondary)
	// read before the entry's page was imported — if its source read then
	// landed after the delete, the label would be found on neither side. The
	// write lock waits those rounds out; rounds starting afterwards observe
	// the post-cutover table and read the fully-imported destination as
	// primary, so the source's contents no longer matter.
	r.moveGate.Lock()
	r.moveGate.Unlock() //nolint:staticcheck // empty critical section IS the flush

	// The destination owns the range; drop it from the source. The window
	// is still open, so searches that routed before the epoch bump read the
	// destination as their second copy.
	err = retryPage(r.pools[src], func(cc *wire.CloudClient) error {
		removed, err := cc.DeleteRange(lo, hi)
		if err != nil {
			return err
		}
		stats.Removed = removed
		return nil
	})
	if err != nil {
		r.met.rebalances.WithLabelValues("error").Inc()
		return nil, err
	}
	r.met.rebalances.WithLabelValues("ok").Inc()
	r.logger.Info("rebalance done", "moved", stats.Moved, "removed", stats.Removed, "epoch", stats.Epoch)
	return stats, nil
}

// rangeOwner returns the single shard owning [lo, hi), or an error when the
// range spans shards (move smaller ranges — each seam is its own move).
func rangeOwner(t *Table, lo, hi uint64) (string, error) {
	if hi != 0 && lo >= hi {
		return "", fmt.Errorf("shard: empty move range")
	}
	owner := t.Lookup(lo)
	for _, s := range t.Segments {
		if s.Start > lo && (hi == 0 || s.Start < hi) && s.Shard != owner {
			return "", fmt.Errorf("shard: range [%#x, %#x) spans shards %s and %s; move each arc separately",
				lo, hi, owner, s.Shard)
		}
	}
	return owner, nil
}

// rangeSizeEstimate sizes the progress gauge: the source's total entry
// count is an upper bound for the range (exact when the source owns only
// the moving range).
func (r *Router) rangeSizeEstimate(src string) int {
	var total int
	err := r.pools[src].call(func(cc *wire.CloudClient) error {
		st, err := cc.Stats()
		if err != nil {
			return err
		}
		total = st.IndexEntries
		return nil
	})
	if err != nil {
		return 0
	}
	return total
}

func (r *Router) exportPage(src string, lo, hi uint64, cursor []byte, tr *obs.Trace) (*wire.ExportReply, error) {
	var page *wire.ExportReply
	err := retryPage(r.pools[src], func(cc *wire.CloudClient) error {
		var reply wire.ExportReply
		if err := cc.Client().CallTraced(wire.MethodCloudExport,
			&wire.ExportMsg{Lo: lo, Hi: hi, Cursor: cursor, Limit: movePageSize},
			&reply, tr, "scatter:"+src); err != nil {
			return err
		}
		page = &reply
		return nil
	})
	return page, err
}

func (r *Router) importPage(dst string, page *wire.ExportReply, tr *obs.Trace) error {
	return retryPage(r.pools[dst], func(cc *wire.CloudClient) error {
		return cc.Client().CallTraced(wire.MethodCloudImport,
			&wire.ImportMsg{Labels: page.Labels, Payloads: page.Payloads}, nil, tr, "scatter:"+dst)
	})
}

// RouterClient is a typed client for the router's admin methods; for the
// cloud methods a plain wire.CloudClient against the router works unchanged.
type RouterClient struct {
	c *wire.Client
}

// DialRouter connects to a router's admin surface.
func DialRouter(addr string) (*RouterClient, error) {
	return DialRouterOpts(addr, wire.ClientOptions{})
}

// DialRouterOpts connects with explicit transport options.
func DialRouterOpts(addr string, opts wire.ClientOptions) (*RouterClient, error) {
	c, err := wire.DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &RouterClient{c: c}, nil
}

// Rebalance asks the router to move [lo, hi) onto shard dst.
func (rc *RouterClient) Rebalance(lo, hi uint64, dst string) (*MoveStats, error) {
	var stats MoveStats
	if err := rc.c.Call(MethodRouterRebalance, &RebalanceMsg{Lo: lo, Hi: hi, To: dst}, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// TableInfo fetches the live routing table.
func (rc *RouterClient) TableInfo() (*TableInfo, error) {
	var info TableInfo
	if err := rc.c.Call(MethodRouterTable, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Shards fetches the per-shard status listing.
func (rc *RouterClient) Shards() ([]ShardStatus, error) {
	var out []ShardStatus
	if err := rc.c.Call(MethodRouterShards, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close closes the connection.
func (rc *RouterClient) Close() error { return rc.c.Close() }
