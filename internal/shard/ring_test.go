package shard

import (
	"encoding/json"
	"testing"
)

func TestNewTableCoversSpaceDeterministically(t *testing.T) {
	a, err := NewTable([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b, _ := NewTable([]string{"s1", "s2", "s3"}, 0)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("table construction is not deterministic")
	}
	if got := len(a.Shards()); got != 3 {
		t.Fatalf("table references %d shards, want 3", got)
	}
	// Every address resolves to a configured shard.
	for _, addr := range []uint64{0, 1, 1 << 32, 1<<63 + 12345, ^uint64(0)} {
		owner := a.Lookup(addr)
		if owner != "s1" && owner != "s2" && owner != "s3" {
			t.Fatalf("Lookup(%#x) = %q", addr, owner)
		}
	}
}

func TestNewTableRejectsBadInput(t *testing.T) {
	if _, err := NewTable(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewTable([]string{"a", "a"}, 4); err == nil {
		t.Fatal("duplicate shard ID accepted")
	}
	if _, err := NewTable([]string{""}, 4); err == nil {
		t.Fatal("empty shard ID accepted")
	}
}

func TestTableMove(t *testing.T) {
	tab, err := NewTable([]string{"s1", "s2"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = uint64(1) << 62, uint64(1) << 63
	next, err := tab.Move(lo, hi, "s2")
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != tab.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", next.Epoch, tab.Epoch+1)
	}
	for _, addr := range []uint64{lo, lo + 999, hi - 1} {
		if got := next.Lookup(addr); got != "s2" {
			t.Fatalf("moved address %#x owned by %q", addr, got)
		}
	}
	// Addresses outside the range keep their owner.
	for _, addr := range []uint64{0, lo - 1, hi, ^uint64(0)} {
		if tab.Lookup(addr) != next.Lookup(addr) {
			t.Fatalf("address %#x changed owner outside the moved range", addr)
		}
	}
	// The original table is untouched.
	if tab.Epoch != 0 {
		t.Fatal("Move mutated its receiver")
	}
	// Moving the top arc with hi == 0 (2^64).
	top, err := next.Move(15<<60, 0, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if got := top.Lookup(^uint64(0)); got != "s1" {
		t.Fatalf("top address owned by %q after move", got)
	}
	if _, err := next.Move(5, 5, "s1"); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := next.Move(0, 10, ""); err == nil {
		t.Fatal("empty destination accepted")
	}
}

func TestTableRangesRoundTrip(t *testing.T) {
	tab, err := NewTable([]string{"s1", "s2", "s3"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The union of all shards' ranges tiles the space exactly.
	type arc struct{ lo, hi uint64 }
	var arcs []arc
	for _, id := range tab.Shards() {
		for _, rg := range tab.Ranges(id) {
			arcs = append(arcs, arc{rg[0], rg[1]})
			// Spot-check ownership inside the arc.
			if got := tab.Lookup(rg[0]); got != id {
				t.Fatalf("Ranges(%s) includes %#x owned by %s", id, rg[0], got)
			}
		}
	}
	if len(arcs) != len(tab.Segments) {
		t.Fatalf("%d arcs for %d segments", len(arcs), len(tab.Segments))
	}
}

func TestRangeOwner(t *testing.T) {
	tab := &Table{Epoch: 3, Segments: []Segment{
		{Start: 0, Shard: "a"},
		{Start: 1 << 32, Shard: "b"},
		{Start: 1 << 48, Shard: "a"},
	}}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if owner, err := rangeOwner(tab, 0, 1<<32); err != nil || owner != "a" {
		t.Fatalf("rangeOwner = %q, %v", owner, err)
	}
	if owner, err := rangeOwner(tab, 1<<48, 0); err != nil || owner != "a" {
		t.Fatalf("top-arc rangeOwner = %q, %v", owner, err)
	}
	if _, err := rangeOwner(tab, 0, 1<<33); err == nil {
		t.Fatal("cross-shard range accepted")
	}
}
