package shard

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverShard runs the flow-sensitive analyzers as a library over
// this package, mirroring the core and contract gates. The router handles
// raw search tokens (PRF keys G1/G2) and the deployment's trapdoor key on
// the scatter path: secrettaint keeps that material out of logs, error
// values and journal records, and lockdiscipline keeps the routing-table /
// move-window state race-free under concurrent searches and rebalances.
func TestVetGatesOverShard(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/shard")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/shard")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.SecretTaint,
		analysis.LockDiscipline,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in shard: %s", d)
	}
}
