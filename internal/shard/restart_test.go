package shard

import (
	"fmt"
	"testing"

	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/wire"
	"slicer/internal/workload"
)

// TestRouterRestartRecovery reboots a durable router between init, a
// rebalance and a search: the WAL must hand the replacement router the
// trapdoor key (or searches cannot walk token chains) and the advanced
// routing-table epoch (or searches route ranges to the wrong shard after
// the source deleted them).
func TestRouterRestartRecovery(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	db := workload.Generate(workload.Config{N: 40, Bits: 8, Seed: 31})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.NewCloud(owner.CloudInit(built.Index), core.WitnessCached)
	if err != nil {
		t.Fatal(err)
	}

	var specs []ShardSpec
	for i := 0; i < 3; i++ {
		srv := wire.NewCloudServer()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, ShardSpec{ID: fmt.Sprintf("s%d", i+1), Addr: addr})
	}
	dir := t.TempDir()
	boot := func() (*Router, string) {
		r, err := NewRouter(Options{Shards: specs, DataDir: dir, Fsync: durable.FsyncAlways, Workers: 2})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		addr, err := r.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		return r, addr
	}
	search := func(addr string, q core.Query) {
		t.Helper()
		cli, err := wire.DialCloud(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		req, err := user.Token(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cli.Search(req)
		if err != nil {
			t.Fatalf("search after restart: %v", err)
		}
		want, err := single.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResponses(t, got, want)
	}

	// Boot 1: init the fleet through the router, then shut the router down.
	r1, addr := boot()
	cli, err := wire.DialCloud(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init: %v", err)
	}
	cli.Close()
	epoch0 := r1.Table().Epoch
	if err := r1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Boot 2: no re-init — the journaled trapdoor key must carry searches.
	// Then move one arc and shut down again.
	r2, addr2 := boot()
	if got := r2.Table().Epoch; got != epoch0 {
		t.Fatalf("recovered epoch %d, want %d", got, epoch0)
	}
	search(addr2, core.Less(200))
	tab := r2.Table()
	src := tab.Shards()[0]
	dst := tab.Shards()[1]
	rg := tab.Ranges(src)[0]
	if _, err := r2.Rebalance(rg[0], rg[1], dst, nil); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	epoch1 := r2.Table().Epoch
	if epoch1 != epoch0+1 {
		t.Fatalf("epoch after move = %d, want %d", epoch1, epoch0+1)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Boot 3: the moved arc must route to its new owner (the source deleted
	// it, so a stale table would lose results) and searches stay identical.
	r3, addr3 := boot()
	defer r3.Close()
	if got := r3.Table().Epoch; got != epoch1 {
		t.Fatalf("recovered epoch %d after move, want %d", got, epoch1)
	}
	if got := r3.Table().Lookup(rg[0]); got != dst {
		t.Fatalf("recovered table owns %#x by %q, want %q", rg[0], got, dst)
	}
	search(addr3, core.Less(200))
	search(addr3, core.Greater(0))
}
