package store

import "encoding/binary"

// Addr projects a label into the 64-bit address space the shard placement
// layer partitions: the label's first 8 bytes, big-endian. Labels are PRF
// outputs, so addresses are uniformly distributed — the property that makes
// the encrypted index shard cleanly by address range.
func Addr(l Label) uint64 { return binary.BigEndian.Uint64(l[:8]) }

// Backend is the contract between the encrypted index and everything that
// stores or moves it: the in-memory dictionary (Index), the shard
// rebalancer, and a future disk-backed store. All methods observe the
// history-independence requirement — no implementation may retain insertion
// order.
//
// Implementations are not required to be safe for concurrent use; callers
// (core.Cloud) serialize access under their own locks.
type Backend interface {
	// Get looks up a label.
	Get(l Label) (Payload, bool)
	// Put inserts an entry; inserting a duplicate label is an error.
	Put(l Label, d Payload) error
	// Delete removes an entry, reporting whether it was present.
	Delete(l Label) bool
	// Len returns the number of entries.
	Len() int
	// Range calls f for every entry until f returns false. Iteration order
	// is unspecified and must not encode insertion history.
	Range(f func(l Label, d Payload) bool)
	// RangeAddr calls f for every entry whose address (Addr) falls in
	// [lo, hi) until f returns false. hi == 0 means the exclusive bound
	// 2^64, so [0, 0) spans the whole address space. Iteration order is
	// unspecified.
	RangeAddr(lo, hi uint64, f func(l Label, d Payload) bool)
}

// Index implements Backend.
var _ Backend = (*Index)(nil)

// Delete removes an entry, reporting whether it was present.
func (ix *Index) Delete(l Label) bool {
	if _, ok := ix.m[l]; !ok {
		return false
	}
	delete(ix.m, l)
	return true
}

// Range calls f for every entry until f returns false. Iteration order is
// Go map order: unspecified and history independent.
func (ix *Index) Range(f func(l Label, d Payload) bool) {
	for l, d := range ix.m {
		if !f(l, d) {
			return
		}
	}
}

// RangeAddr calls f for every entry whose address falls in [lo, hi) — with
// hi == 0 read as 2^64 — until f returns false. The in-memory dictionary
// has no address ordering, so this is a full scan; a disk-backed Backend
// would serve it from a sorted structure.
func (ix *Index) RangeAddr(lo, hi uint64, f func(l Label, d Payload) bool) {
	for l, d := range ix.m {
		if a := Addr(l); a < lo || (hi != 0 && a >= hi) {
			continue
		}
		if !f(l, d) {
			return
		}
	}
}
