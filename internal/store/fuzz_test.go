package store

import (
	"testing"
)

// FuzzUnmarshalIndex hardens the index deserializer against corrupted or
// adversarial state shipped between owner and cloud.
func FuzzUnmarshalIndex(f *testing.F) {
	ix := NewIndex()
	for i := byte(0); i < 5; i++ {
		if err := ix.Put(label(i), payload(i)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(ix.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalIndex(data)
		if err != nil {
			return
		}
		// A successful parse must round-trip to an equal-sized encoding.
		re := got.Marshal()
		got2, err := UnmarshalIndex(re)
		if err != nil {
			t.Fatalf("re-encoded index failed to parse: %v", err)
		}
		if got2.Len() != got.Len() {
			t.Fatal("round trip changed entry count")
		}
	})
}
