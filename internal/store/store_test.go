package store

import (
	"bytes"
	"testing"
	"testing/quick"

	"slicer/internal/mhash"
)

func label(b byte) Label {
	var l Label
	l[0] = b
	return l
}

func payload(b byte) Payload {
	var p Payload
	p[0] = b
	return p
}

func TestIndexPutGet(t *testing.T) {
	ix := NewIndex()
	if err := ix.Put(label(1), payload(10)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := ix.Get(label(1))
	if !ok || got != payload(10) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := ix.Get(label(2)); ok {
		t.Error("missing label found")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
	if ix.SizeBytes() != 2*EntrySize {
		t.Errorf("SizeBytes = %d, want %d", ix.SizeBytes(), 2*EntrySize)
	}
}

func TestIndexDuplicateLabelRejected(t *testing.T) {
	ix := NewIndex()
	if err := ix.Put(label(1), payload(10)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := ix.Put(label(1), payload(11)); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestIndexMerge(t *testing.T) {
	a := NewIndex()
	b := NewIndex()
	if err := a.Put(label(1), payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(label(2), payload(2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 2 {
		t.Errorf("merged Len = %d, want 2", a.Len())
	}
	// Conflicting merge fails.
	c := NewIndex()
	if err := c.Put(label(1), payload(9)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("conflicting merge accepted")
	}
}

func TestIndexMarshalRoundTrip(t *testing.T) {
	ix := NewIndex()
	for i := byte(0); i < 50; i++ {
		if err := ix.Put(label(i), payload(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := UnmarshalIndex(ix.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalIndex: %v", err)
	}
	if got.Len() != ix.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), ix.Len())
	}
	for i := byte(0); i < 50; i++ {
		d, ok := got.Get(label(i))
		if !ok || d != payload(i+100) {
			t.Fatalf("entry %d lost in round trip", i)
		}
	}
}

func TestUnmarshalIndexRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalIndex([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	ix := NewIndex()
	if err := ix.Put(label(1), payload(1)); err != nil {
		t.Fatal(err)
	}
	enc := ix.Marshal()
	if _, err := UnmarshalIndex(enc[:len(enc)-1]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestLabelPayloadFromBytes(t *testing.T) {
	if _, err := LabelFromBytes(make([]byte, EntrySize-1)); err == nil {
		t.Error("short label accepted")
	}
	if _, err := PayloadFromBytes(make([]byte, EntrySize+1)); err == nil {
		t.Error("long payload accepted")
	}
	raw := bytes.Repeat([]byte{7}, EntrySize)
	l, err := LabelFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l[:], raw) {
		t.Error("label bytes mismatch")
	}
}

func TestTrapdoorStates(t *testing.T) {
	ts := NewTrapdoorStates()
	w := []byte("keyword")
	if _, ok := ts.Get(w); ok {
		t.Error("empty T found a keyword")
	}
	ts.Put(w, TrapdoorState{Trapdoor: []byte{1, 2, 3}, Epoch: 2})
	st, ok := ts.Get(w)
	if !ok || st.Epoch != 2 || !bytes.Equal(st.Trapdoor, []byte{1, 2, 3}) {
		t.Fatalf("Get = %+v, %v", st, ok)
	}
	if ts.Len() != 1 {
		t.Errorf("Len = %d, want 1", ts.Len())
	}
	if ts.SizeBytes() == 0 {
		t.Error("SizeBytes reported 0")
	}
}

func TestTrapdoorStatesPutCopies(t *testing.T) {
	ts := NewTrapdoorStates()
	trapdoor := []byte{1, 2, 3}
	ts.Put([]byte("w"), TrapdoorState{Trapdoor: trapdoor, Epoch: 0})
	trapdoor[0] = 99
	st, _ := ts.Get([]byte("w"))
	if st.Trapdoor[0] != 1 {
		t.Error("stored trapdoor shares memory with the caller")
	}
}

func TestTrapdoorStatesCloneIndependent(t *testing.T) {
	ts := NewTrapdoorStates()
	ts.Put([]byte("w"), TrapdoorState{Trapdoor: []byte{1}, Epoch: 0})
	clone := ts.Clone()
	ts.Put([]byte("w"), TrapdoorState{Trapdoor: []byte{2}, Epoch: 1})
	st, _ := clone.Get([]byte("w"))
	if st.Epoch != 0 || st.Trapdoor[0] != 1 {
		t.Error("clone observed later mutation")
	}
}

func TestTrapdoorStatesRange(t *testing.T) {
	ts := NewTrapdoorStates()
	for _, w := range []string{"a", "b", "c"} {
		ts.Put([]byte(w), TrapdoorState{Trapdoor: []byte(w), Epoch: len(w)})
	}
	seen := 0
	ts.Range(func(keyword []byte, st TrapdoorState) bool {
		seen++
		return true
	})
	if seen != 3 {
		t.Errorf("Range visited %d entries, want 3", seen)
	}
	seen = 0
	ts.Range(func([]byte, TrapdoorState) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("early-exit Range visited %d entries, want 1", seen)
	}
}

func TestSetHashesPopSemantics(t *testing.T) {
	s := NewSetHashes()
	h := mhash.OfMultiset([][]byte{[]byte("x")})
	s.Put("k", h)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, ok := s.Get("k")
	if !ok || !got.Equal(h) {
		t.Fatal("Get after Put failed")
	}
	got, ok = s.Pop("k")
	if !ok || !got.Equal(h) {
		t.Fatal("Pop failed")
	}
	if _, ok := s.Pop("k"); ok {
		t.Error("second Pop succeeded")
	}
	if s.Len() != 0 {
		t.Errorf("Len after pop = %d, want 0", s.Len())
	}
}

func TestSetHashKeyInjective(t *testing.T) {
	f := func(t1, t2 []byte, j1, j2 uint8) bool {
		g1 := bytes.Repeat([]byte{1}, 16)
		g2 := bytes.Repeat([]byte{2}, 16)
		k1 := SetHashKey(t1, int(j1), g1, g2)
		k2 := SetHashKey(t2, int(j2), g1, g2)
		same := bytes.Equal(t1, t2) && j1 == j2
		return (k1 == k2) == same
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
