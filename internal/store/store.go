// Package store provides the three state containers of the Slicer
// protocols: the history-independent encrypted index dictionary I, the
// trapdoor state dictionary T kept by the data owner/user, and the set-hash
// dictionary S kept by the data owner. It also tracks storage footprints so
// the evaluation harness can reproduce the paper's storage-cost figures.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"slicer/internal/mhash"
	"slicer/internal/prf"
)

// EntrySize is the width of index labels and payloads (one PRF output).
const EntrySize = prf.Size

// Label is an index address l = F(G1, t||c).
type Label [EntrySize]byte

// Payload is a masked index entry d = F(G2, t||c) XOR Enc(K_R, R).
type Payload [EntrySize]byte

// LabelFromBytes converts a PRF output into a Label.
func LabelFromBytes(b []byte) (Label, error) {
	var l Label
	if len(b) != EntrySize {
		return l, fmt.Errorf("store: label must be %d bytes, got %d", EntrySize, len(b))
	}
	copy(l[:], b)
	return l, nil
}

// PayloadFromBytes converts raw bytes into a Payload.
func PayloadFromBytes(b []byte) (Payload, error) {
	var p Payload
	if len(b) != EntrySize {
		return p, fmt.Errorf("store: payload must be %d bytes, got %d", EntrySize, len(b))
	}
	copy(p[:], b)
	return p, nil
}

// Index is the encrypted index I: a history-independent dictionary from
// PRF-derived labels to masked record handles. Go's map iteration order is
// independent of insertion history, and no ordering metadata is retained,
// so the stored structure reveals nothing about insertion order.
type Index struct {
	m map[Label]Payload
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{m: make(map[Label]Payload)}
}

// Put inserts an entry. Inserting a duplicate label is an error: labels are
// PRF outputs over unique (keyword, epoch, counter) triples, so a collision
// indicates protocol misuse.
func (ix *Index) Put(l Label, d Payload) error {
	if _, exists := ix.m[l]; exists {
		return fmt.Errorf("store: duplicate index label %x", l[:4])
	}
	ix.m[l] = d
	return nil
}

// Get looks up a label.
func (ix *Index) Get(l Label) (Payload, bool) {
	d, ok := ix.m[l]
	return d, ok
}

// Len returns the number of entries.
func (ix *Index) Len() int { return len(ix.m) }

// SizeBytes returns the logical storage footprint of the index (labels plus
// payloads), used by the Fig. 4a experiment.
func (ix *Index) SizeBytes() int { return len(ix.m) * 2 * EntrySize }

// Merge copies every entry of other into ix (applying an index delta shipped
// by the owner after Insert).
func (ix *Index) Merge(other *Index) error {
	for l, d := range other.m {
		if err := ix.Put(l, d); err != nil {
			return err
		}
	}
	return nil
}

// Marshal serializes the index. Entries are emitted in map order, which is
// already history independent.
func (ix *Index) Marshal() []byte {
	out := make([]byte, 8, 8+len(ix.m)*2*EntrySize)
	binary.BigEndian.PutUint64(out, uint64(len(ix.m)))
	for l, d := range ix.m {
		out = append(out, l[:]...)
		out = append(out, d[:]...)
	}
	return out
}

// UnmarshalIndex parses an index produced by Marshal.
func UnmarshalIndex(data []byte) (*Index, error) {
	if len(data) < 8 {
		return nil, errors.New("store: truncated index encoding")
	}
	n := binary.BigEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != n*2*EntrySize {
		return nil, errors.New("store: index encoding length mismatch")
	}
	ix := &Index{m: make(map[Label]Payload, n)}
	for i := uint64(0); i < n; i++ {
		var l Label
		var d Payload
		copy(l[:], data[:EntrySize])
		copy(d[:], data[EntrySize:2*EntrySize])
		ix.m[l] = d
		data = data[2*EntrySize:]
	}
	return ix, nil
}

// TrapdoorState is one keyword's entry in T: the newest trapdoor t_j and
// the number of epochs j.
type TrapdoorState struct {
	Trapdoor []byte
	Epoch    int
}

// TrapdoorStates is the dictionary T, keyed by raw keyword bytes. The data
// owner maintains it and ships copies to authorized data users.
type TrapdoorStates struct {
	m map[string]TrapdoorState
}

// NewTrapdoorStates returns an empty T.
func NewTrapdoorStates() *TrapdoorStates {
	return &TrapdoorStates{m: make(map[string]TrapdoorState)}
}

// Get returns the state for a keyword, if present.
func (t *TrapdoorStates) Get(keyword []byte) (TrapdoorState, bool) {
	st, ok := t.m[string(keyword)]
	return st, ok
}

// Put stores a keyword's state, copying the trapdoor bytes.
func (t *TrapdoorStates) Put(keyword []byte, st TrapdoorState) {
	cp := make([]byte, len(st.Trapdoor))
	copy(cp, st.Trapdoor)
	t.m[string(keyword)] = TrapdoorState{Trapdoor: cp, Epoch: st.Epoch}
}

// Len returns the number of tracked keywords.
func (t *TrapdoorStates) Len() int { return len(t.m) }

// Clone deep-copies T (the owner hands an independent copy to each user).
func (t *TrapdoorStates) Clone() *TrapdoorStates {
	out := NewTrapdoorStates()
	for k, st := range t.m {
		out.Put([]byte(k), st)
	}
	return out
}

// Range calls f for every (keyword, state) pair until f returns false.
// Iteration order is unspecified.
func (t *TrapdoorStates) Range(f func(keyword []byte, st TrapdoorState) bool) {
	for k, st := range t.m {
		if !f([]byte(k), st) {
			return
		}
	}
}

// SizeBytes returns the logical storage footprint of T.
func (t *TrapdoorStates) SizeBytes() int {
	total := 0
	for k, st := range t.m {
		total += len(k) + len(st.Trapdoor) + 8
	}
	return total
}

// SetHashKey builds the S dictionary key t || j || G1 || G2 used by
// Algorithms 1 and 2. Components are length-delimited by construction
// (t, G1, G2 have fixed widths within one deployment).
func SetHashKey(trapdoor []byte, epoch int, g1, g2 []byte) string {
	key := make([]byte, 0, len(trapdoor)+8+len(g1)+len(g2))
	key = append(key, trapdoor...)
	var j [8]byte
	binary.BigEndian.PutUint64(j[:], uint64(epoch))
	key = append(key, j[:]...)
	key = append(key, g1...)
	key = append(key, g2...)
	return string(key)
}

// SetHashes is the dictionary S mapping t||j||G1||G2 to the multiset hash of
// the keyword's cumulative encrypted result set.
type SetHashes struct {
	m map[string]mhash.Hash
}

// NewSetHashes returns an empty S.
func NewSetHashes() *SetHashes {
	return &SetHashes{m: make(map[string]mhash.Hash)}
}

// Put stores a hash under a key.
func (s *SetHashes) Put(key string, h mhash.Hash) { s.m[key] = h }

// Pop removes and returns the hash under a key (Algorithm 2 line 14).
func (s *SetHashes) Pop(key string) (mhash.Hash, bool) {
	h, ok := s.m[key]
	if ok {
		delete(s.m, key)
	}
	return h, ok
}

// Get returns the hash under a key without removing it.
func (s *SetHashes) Get(key string) (mhash.Hash, bool) {
	h, ok := s.m[key]
	return h, ok
}

// Len returns the number of stored hashes.
func (s *SetHashes) Len() int { return len(s.m) }

// Range calls f for every (key, hash) pair until f returns false.
// Iteration order is unspecified.
func (s *SetHashes) Range(f func(key string, h mhash.Hash) bool) {
	for k, h := range s.m {
		if !f(k, h) {
			return
		}
	}
}
