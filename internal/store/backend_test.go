package store

import (
	"encoding/binary"
	"testing"
)

func labelN(n uint64) Label {
	var l Label
	binary.BigEndian.PutUint64(l[:8], n)
	l[EntrySize-1] = byte(n) // distinguish labels sharing an address prefix
	return l
}

func payloadN(n uint64) Payload {
	var p Payload
	binary.BigEndian.PutUint64(p[:8], ^n)
	return p
}

func TestBackendDeleteAndRange(t *testing.T) {
	ix := NewIndex()
	var b Backend = ix
	for i := uint64(0); i < 16; i++ {
		if err := b.Put(labelN(i<<60), payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 16 {
		t.Fatalf("Len = %d, want 16", b.Len())
	}
	if !b.Delete(labelN(3 << 60)) {
		t.Fatal("Delete of present label reported absent")
	}
	if b.Delete(labelN(3 << 60)) {
		t.Fatal("Delete of absent label reported present")
	}
	if _, ok := b.Get(labelN(3 << 60)); ok {
		t.Fatal("deleted label still present")
	}
	seen := 0
	b.Range(func(l Label, d Payload) bool {
		if want := payloadN(Addr(l) >> 60); d != want {
			t.Fatalf("Range payload mismatch at %x", l[:8])
		}
		seen++
		return true
	})
	if seen != 15 {
		t.Fatalf("Range visited %d entries, want 15", seen)
	}
	// Early termination.
	seen = 0
	b.Range(func(Label, Payload) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("Range ignored early stop, visited %d", seen)
	}
}

func TestBackendRangeAddr(t *testing.T) {
	ix := NewIndex()
	for i := uint64(0); i < 16; i++ {
		if err := ix.Put(labelN(i<<60), payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := func(lo, hi uint64) int {
		n := 0
		ix.RangeAddr(lo, hi, func(Label, Payload) bool { n++; return true })
		return n
	}
	if got := count(0, 0); got != 16 { // whole space: hi == 0 means 2^64
		t.Fatalf("full-space RangeAddr visited %d, want 16", got)
	}
	if got := count(4<<60, 8<<60); got != 4 {
		t.Fatalf("[4<<60,8<<60) visited %d, want 4", got)
	}
	if got := count(15<<60, 0); got != 1 { // top arc includes the max address
		t.Fatalf("[15<<60,2^64) visited %d, want 1", got)
	}
	if got := count(1, 1<<60); got != 0 { // (addr 0 excluded, 1<<60 exclusive)
		t.Fatalf("[1,1<<60) visited %d, want 0", got)
	}
}

func TestAddrMatchesLabelPrefix(t *testing.T) {
	l := labelN(0xdeadbeefcafef00d)
	if Addr(l) != 0xdeadbeefcafef00d {
		t.Fatalf("Addr = %x", Addr(l))
	}
}
