package workload

import (
	"testing"

	"slicer/internal/core"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 100, Bits: 16, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Attrs[0].Value != b[i].Attrs[0].Value {
			t.Fatalf("record %d differs across runs", i)
		}
	}
	c := Generate(Config{N: 100, Bits: 16, Seed: 8})
	same := true
	for i := range a {
		if a[i].Attrs[0].Value != c[i].Attrs[0].Value {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical values")
	}
}

func TestGenerateRespectsDomain(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipf, Clustered} {
		for _, bits := range []int{4, 8, 16} {
			records := Generate(Config{N: 500, Bits: bits, Dist: dist, Seed: 3})
			maxV := uint64(1)<<uint(bits) - 1
			for _, rec := range records {
				if rec.Attrs[0].Value > maxV {
					t.Fatalf("%v/%d-bit: value %d out of domain", dist, bits, rec.Attrs[0].Value)
				}
			}
		}
	}
}

func TestGenerateIDsAndAttr(t *testing.T) {
	records := Generate(Config{N: 10, Bits: 8, Seed: 1, FirstID: 100, Attr: "age"})
	for i, rec := range records {
		if rec.ID != 100+uint64(i) {
			t.Errorf("record %d ID = %d", i, rec.ID)
		}
		if rec.Attrs[0].Name != "age" {
			t.Errorf("record %d attr = %q", i, rec.Attrs[0].Name)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	records := Generate(Config{N: 5000, Bits: 16, Dist: Zipf, Seed: 2})
	small := 0
	for _, rec := range records {
		if rec.Attrs[0].Value < 16 {
			small++
		}
	}
	// A zipf(1.3) draw concentrates mass near zero; uniform would put
	// ~0.02% below 16, zipf puts the majority there.
	if small < len(records)/2 {
		t.Errorf("zipf skew missing: only %d/%d values below 16", small, len(records))
	}
}

func TestQueriesMixes(t *testing.T) {
	cfg := Config{N: 10, Bits: 8, Seed: 4}
	eq := Queries(cfg, EqualityOnly, 50)
	for _, q := range eq {
		if q.Op != core.OpEqual {
			t.Fatalf("EqualityOnly produced %v", q.Op)
		}
	}
	ord := Queries(cfg, OrderOnly, 50)
	for _, q := range ord {
		if q.Op != core.OpLess && q.Op != core.OpGreater {
			t.Fatalf("OrderOnly produced %v", q.Op)
		}
	}
	mixed := Queries(cfg, Mixed, 200)
	seen := map[core.Op]bool{}
	for _, q := range mixed {
		seen[q.Op] = true
	}
	if len(seen) != 3 {
		t.Errorf("Mixed produced only %d operator kinds", len(seen))
	}
}

func TestAnswer(t *testing.T) {
	db := []core.Record{
		core.NewRecord(1, 5),
		core.NewRecord(2, 10),
		{ID: 3, Attrs: []core.AttrValue{{Name: "age", Value: 5}}},
	}
	if got := Answer(db, core.Equal(5)); len(got) != 1 || got[0] != 1 {
		t.Errorf("Equal(5) = %v (attribute isolation)", got)
	}
	if got := Answer(db, core.Less(10)); len(got) != 1 || got[0] != 1 {
		t.Errorf("Less(10) = %v", got)
	}
	if got := Answer(db, core.Greater(5)); len(got) != 1 || got[0] != 2 {
		t.Errorf("Greater(5) = %v", got)
	}
	if got := Answer(db, core.Query{Attr: "age", Op: core.OpEqual, Value: 5}); len(got) != 1 || got[0] != 3 {
		t.Errorf("age=5 = %v", got)
	}
}
