// Package workload generates the synthetic datasets and query mixes used by
// the evaluation harness. The paper evaluates on "randomly simulated
// key-value records" with 8/16/24-bit values; this package reproduces that
// (uniform distribution) and adds zipf and clustered distributions for the
// extended experiments. All generators are deterministic under a seed so
// experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand" //slicer:allow weakrand -- seeded synthetic dataset/query generation; reproducible experiments require a deterministic PRNG

	"slicer/internal/core"
)

// Distribution selects how attribute values are drawn.
type Distribution int

// Supported value distributions.
const (
	// Uniform draws values uniformly from the full bit-width domain — the
	// paper's setting.
	Uniform Distribution = iota + 1
	// Zipf draws values with a heavy-tailed frequency (many duplicates of
	// small values), stressing large per-keyword result sets.
	Zipf
	// Clustered draws values from a few dense clusters, stressing range
	// queries that cut through clusters.
	Clustered
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Clustered:
		return "clustered"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Config parameterizes a synthetic dataset.
type Config struct {
	// N is the number of records.
	N int
	// Bits is the value bit width.
	Bits int
	// Dist is the value distribution (default Uniform).
	Dist Distribution
	// Seed makes generation deterministic.
	Seed int64
	// Attr optionally names the attribute (empty = single unnamed).
	Attr string
	// FirstID numbers records from this ID (default 1).
	FirstID uint64
}

func (c Config) maxValue() uint64 {
	if c.Bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(c.Bits) - 1
}

// Generate produces N records with the configured distribution.
func Generate(cfg Config) []core.Record {
	rng := rand.New(rand.NewSource(cfg.Seed))
	firstID := cfg.FirstID
	if firstID == 0 {
		firstID = 1
	}
	dist := cfg.Dist
	if dist == 0 {
		dist = Uniform
	}
	maxV := cfg.maxValue()

	var draw func() uint64
	switch dist {
	case Uniform:
		draw = func() uint64 { return rng.Uint64() & maxV }
	case Zipf:
		z := rand.NewZipf(rng, 1.3, 1.0, maxV)
		draw = func() uint64 { return z.Uint64() }
	case Clustered:
		centers := make([]uint64, 8)
		for i := range centers {
			centers[i] = rng.Uint64() & maxV
		}
		spread := maxV/64 + 1
		draw = func() uint64 {
			c := centers[rng.Intn(len(centers))]
			off := uint64(rng.Int63n(int64(spread)))
			v := c + off - spread/2
			return v & maxV
		}
	default:
		draw = func() uint64 { return rng.Uint64() & maxV }
	}

	records := make([]core.Record, cfg.N)
	for i := range records {
		records[i] = core.Record{
			ID:    firstID + uint64(i),
			Attrs: []core.AttrValue{{Name: cfg.Attr, Value: draw()}},
		}
	}
	return records
}

// QueryMix selects which operators a query stream contains.
type QueryMix int

// Query mixes.
const (
	EqualityOnly QueryMix = iota + 1
	OrderOnly
	Mixed
)

// Queries produces a deterministic stream of random queries over the value
// domain.
func Queries(cfg Config, mix QueryMix, count int) []core.Query {
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	maxV := cfg.maxValue()
	out := make([]core.Query, count)
	for i := range out {
		v := rng.Uint64() & maxV
		var op core.Op
		switch mix {
		case EqualityOnly:
			op = core.OpEqual
		case OrderOnly:
			if rng.Intn(2) == 0 {
				op = core.OpLess
			} else {
				op = core.OpGreater
			}
		default:
			switch rng.Intn(3) {
			case 0:
				op = core.OpEqual
			case 1:
				op = core.OpLess
			default:
				op = core.OpGreater
			}
		}
		out[i] = core.Query{Attr: cfg.Attr, Op: op, Value: v}
	}
	return out
}

// Answer computes the plaintext ground truth for a query over a dataset,
// for validating encrypted search results in tests and experiments.
func Answer(db []core.Record, q core.Query) []uint64 {
	var out []uint64
	for _, rec := range db {
		for _, av := range rec.Attrs {
			if av.Name != q.Attr {
				continue
			}
			match := false
			switch q.Op {
			case core.OpEqual:
				match = av.Value == q.Value
			case core.OpLess:
				match = av.Value < q.Value
			case core.OpGreater:
				match = av.Value > q.Value
			}
			if match {
				out = append(out, rec.ID)
			}
		}
	}
	return out
}
