package accumulator

import (
	"fmt"
	"math/big"
	"testing"

	"slicer/internal/hprime"
)

const testBits = 256

func setupParams(t *testing.T) *Params {
	t.Helper()
	p, err := Setup(testBits)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return p
}

func testPrimes(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = hprime.Hash([]byte(fmt.Sprintf("acc-test-%d", i)))
	}
	return out
}

func TestSetupRejectsTiny(t *testing.T) {
	if _, err := Setup(16); err == nil {
		t.Error("16-bit modulus accepted")
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	primes := testPrimes(16)
	ac := pp.Accumulate(primes)
	for i, x := range primes {
		w, err := pp.MemWit(primes, x)
		if err != nil {
			t.Fatalf("MemWit(%d): %v", i, err)
		}
		if !pp.VerifyMem(ac, x, w) {
			t.Errorf("witness for element %d rejected", i)
		}
	}
}

func TestNonMemberRejected(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	primes := testPrimes(8)
	ac := pp.Accumulate(primes)
	outsider := hprime.Hash([]byte("not-a-member"))
	if _, err := pp.MemWit(primes, outsider); err == nil {
		t.Error("MemWit produced a witness for a non-member")
	}
	// A witness for one member must not verify another member.
	w0, err := pp.MemWit(primes, primes[0])
	if err != nil {
		t.Fatalf("MemWit: %v", err)
	}
	if pp.VerifyMem(ac, primes[1], w0) {
		t.Error("witness transferred across members")
	}
	if pp.VerifyMem(ac, outsider, w0) {
		t.Error("witness validated a non-member")
	}
}

func TestVerifyMemRejectsDegenerateWitnesses(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	primes := testPrimes(4)
	ac := pp.Accumulate(primes)
	if pp.VerifyMem(ac, primes[0], big.NewInt(0)) {
		t.Error("zero witness accepted")
	}
	if pp.VerifyMem(ac, primes[0], new(big.Int).Set(pp.N)) {
		t.Error("witness == N accepted")
	}
	if pp.VerifyMem(ac, primes[0], nil) {
		t.Error("nil witness accepted")
	}
	if pp.VerifyMem(nil, primes[0], big.NewInt(2)) {
		t.Error("nil accumulation value accepted")
	}
}

func TestFastAccumulateMatchesPublic(t *testing.T) {
	p := setupParams(t)
	primes := testPrimes(32)
	slow := p.Public().Accumulate(primes)
	fast, err := p.AccumulateFast(primes)
	if err != nil {
		t.Fatalf("AccumulateFast: %v", err)
	}
	if slow.Cmp(fast) != 0 {
		t.Error("fast and public accumulation disagree")
	}
}

func TestAddAndAddFastMatchFullRecompute(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	primes := testPrimes(24)
	base, extra := primes[:16], primes[16:]
	ac := pp.Accumulate(base)
	full := pp.Accumulate(primes)
	incr := pp.Add(ac, extra)
	if full.Cmp(incr) != 0 {
		t.Error("incremental Add diverges from full recompute")
	}
	fast, err := p.AddFast(ac, extra)
	if err != nil {
		t.Fatalf("AddFast: %v", err)
	}
	if full.Cmp(fast) != 0 {
		t.Error("AddFast diverges from full recompute")
	}
}

func TestRootFactorMatchesMemWit(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	for _, n := range []int{1, 2, 3, 7, 16} {
		primes := testPrimes(n)
		ws := pp.RootFactor(primes)
		if len(ws) != n {
			t.Fatalf("RootFactor returned %d witnesses for %d primes", len(ws), n)
		}
		for i := range primes {
			want, err := pp.MemWit(primes, primes[i])
			if err != nil {
				t.Fatalf("MemWit: %v", err)
			}
			if ws[i].Cmp(want) != 0 {
				t.Errorf("n=%d: RootFactor witness %d disagrees with MemWit", n, i)
			}
		}
	}
	if pp.RootFactor(nil) != nil {
		t.Error("RootFactor(nil) should be nil")
	}
}

func TestRootFactorParallelMatchesSerial(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	for _, n := range []int{1, 2, 5, 33, 128} {
		primes := testPrimes(n)
		serial := pp.RootFactor(primes)
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			parallel := pp.RootFactorParallel(primes, workers)
			if len(parallel) != len(serial) {
				t.Fatalf("n=%d workers=%d: %d witnesses, want %d", n, workers, len(parallel), len(serial))
			}
			for i := range serial {
				if parallel[i].Cmp(serial[i]) != 0 {
					t.Fatalf("n=%d workers=%d: witness %d differs", n, workers, i)
				}
			}
		}
	}
}

func TestDuplicateMemberWitness(t *testing.T) {
	// A prime accumulated twice: the witness must carry the *other*
	// occurrence so verification still passes.
	p := setupParams(t)
	pp := p.Public()
	x := hprime.Hash([]byte("dup"))
	primes := []*big.Int{x, x}
	ac := pp.Accumulate(primes)
	w, err := pp.MemWit(primes, x)
	if err != nil {
		t.Fatalf("MemWit: %v", err)
	}
	if !pp.VerifyMem(ac, x, w) {
		t.Error("duplicate-member witness rejected")
	}
}

func TestPublicStripsTrapdoor(t *testing.T) {
	p := setupParams(t)
	if !p.HasTrapdoor() {
		t.Fatal("fresh setup lost its trapdoor")
	}
	pub := &Params{PublicParams: *p.Public()}
	if pub.HasTrapdoor() {
		t.Error("Public() leaked the trapdoor")
	}
	if _, err := pub.AccumulateFast(testPrimes(2)); err == nil {
		t.Error("fast path worked without the trapdoor")
	}
}

func TestMarshalPublicRoundTrip(t *testing.T) {
	p := setupParams(t)
	pp2, err := UnmarshalPublic(p.Public().Marshal())
	if err != nil {
		t.Fatalf("UnmarshalPublic: %v", err)
	}
	if pp2.N.Cmp(p.N) != 0 || pp2.G.Cmp(p.G) != 0 {
		t.Error("public parameter round trip mismatch")
	}
}

func TestMarshalSecretRoundTrip(t *testing.T) {
	p := setupParams(t)
	blob, err := p.MarshalSecret()
	if err != nil {
		t.Fatalf("MarshalSecret: %v", err)
	}
	p2, err := UnmarshalSecret(blob)
	if err != nil {
		t.Fatalf("UnmarshalSecret: %v", err)
	}
	primes := testPrimes(8)
	a, err := p.AccumulateFast(primes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.AccumulateFast(primes)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Error("decoded parameters accumulate differently")
	}
}

func TestEncodeDecodeValue(t *testing.T) {
	p := setupParams(t)
	pp := p.Public()
	ac := pp.Accumulate(testPrimes(4))
	enc := pp.EncodeValue(ac)
	if len(enc) != pp.Size() {
		t.Errorf("encoded width %d, want %d", len(enc), pp.Size())
	}
	got, err := pp.DecodeValue(enc)
	if err != nil {
		t.Fatalf("DecodeValue: %v", err)
	}
	if got.Cmp(ac) != 0 {
		t.Error("value round trip mismatch")
	}
	if _, err := pp.DecodeValue(enc[1:]); err == nil {
		t.Error("short value accepted")
	}
	if _, err := pp.DecodeValue(make([]byte, pp.Size())); err == nil {
		t.Error("zero value accepted")
	}
}

func TestSetupSafePrimes(t *testing.T) {
	if testing.Short() {
		t.Skip("safe-prime generation is slow")
	}
	p, err := SetupSafe(128)
	if err != nil {
		t.Fatalf("SetupSafe: %v", err)
	}
	primes := testPrimes(4)
	ac := p.Public().Accumulate(primes)
	w, err := p.Public().MemWit(primes, primes[2])
	if err != nil {
		t.Fatalf("MemWit: %v", err)
	}
	if !p.Public().VerifyMem(ac, primes[2], w) {
		t.Error("safe-prime accumulator rejects a valid witness")
	}
}
