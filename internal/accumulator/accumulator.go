// Package accumulator implements the RSA accumulator (Li–Li–Xue style, the
// construction cited by Slicer) used as the authenticated data structure.
//
// The accumulator commits to a set X of prime numbers as
//
//	Ac = g^(Π_{x∈X} x) mod n
//
// for an RSA modulus n and a generator g of QR_n. Membership of x is proved
// with the constant-size witness mw = g^(Π X / x) mod n, verified by
// checking mw^x ≡ Ac (mod n). Forging a witness for a non-member breaks the
// strong RSA assumption.
//
// The data owner runs Setup and therefore knows φ(n); the package exposes a
// fast accumulation path that reduces the exponent mod φ(n) (owner only)
// alongside the public iterative path (cloud / verifier). Witnesses for all
// members at once are computed with the O(|X| log |X|) RootFactor algorithm.
package accumulator

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"slicer/internal/chunkio"
)

// DefaultModulusBits is the default accumulator modulus size; 1024 bits
// mirrors the lightweight benchmark setting, production should use >= 2048.
const DefaultModulusBits = 1024

// ErrNotMember is returned by MemWit when the requested member is not in
// the accumulated set; callers branch on it with errors.Is.
var ErrNotMember = errors.New("accumulator: not in the accumulated set")

// aggThreshold is the prime count from which the public accumulate/witness
// paths aggregate the exponents into one product-tree product and perform a
// single large-exponent modexp instead of per-prime 128-bit modexps. The
// total squaring count is identical, but one call amortizes the per-Exp
// setup (window table, Montgomery conversion) that otherwise repeats |X|
// times; the crossover was measured with BenchmarkAccumulatePublic.
const aggThreshold = 8

var one = big.NewInt(1)

// PublicParams is everything needed to accumulate, produce witnesses and
// verify membership. It is safe to hand to untrusted parties.
type PublicParams struct {
	N *big.Int // RSA modulus
	G *big.Int // generator of QR_n
}

// Params additionally holds the factorization trapdoor, kept by the data
// owner for fast accumulation.
type Params struct {
	PublicParams
	phi *big.Int // φ(n), nil for public-only instances
}

// Setup generates accumulator parameters with a modulus of the given bit
// length. Following common practice the modulus is a product of two random
// primes; use SetupSafe for strict safe-prime moduli.
func Setup(bits int) (*Params, error) {
	return setup(bits, false)
}

// SetupSafe generates parameters whose modulus is a product of safe primes
// (p = 2p'+1 with p' prime), matching the paper's Setup definition exactly.
// Safe-prime generation is substantially slower.
func SetupSafe(bits int) (*Params, error) {
	return setup(bits, true)
}

func setup(bits int, safe bool) (*Params, error) {
	if bits < 64 {
		return nil, fmt.Errorf("accumulator: modulus of %d bits is too small", bits)
	}
	var p, q *big.Int
	for {
		var err error
		p, err = genPrime(bits/2, safe)
		if err != nil {
			return nil, fmt.Errorf("sample p: %w", err)
		}
		q, err = genPrime(bits-bits/2, safe)
		if err != nil {
			return nil, fmt.Errorf("sample q: %w", err)
		}
		if p.Cmp(q) != 0 {
			break
		}
		// p == q would leak the factorization (n = p²); resample. A loop, not
		// recursion: tiny moduli collide often enough to overflow the stack.
	}
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	phi := new(big.Int).Mul(pm1, qm1)

	// Pick g in QR_n \ {1}: square a random element.
	for {
		a, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, fmt.Errorf("sample generator: %w", err)
		}
		g := new(big.Int).Mul(a, a)
		g.Mod(g, n)
		if g.Cmp(one) > 0 {
			return &Params{PublicParams: PublicParams{N: n, G: g}, phi: phi}, nil
		}
	}
}

func genPrime(bits int, safe bool) (*big.Int, error) {
	if !safe {
		return rand.Prime(rand.Reader, bits)
	}
	two := big.NewInt(2)
	for {
		pp, err := rand.Prime(rand.Reader, bits-1)
		if err != nil {
			return nil, err
		}
		p := new(big.Int).Mul(pp, two)
		p.Add(p, one)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// Public strips the factorization trapdoor for handing to clouds/verifiers.
func (p *Params) Public() *PublicParams {
	return &PublicParams{N: p.N, G: p.G}
}

// HasTrapdoor reports whether the fast owner-side path is available.
func (p *Params) HasTrapdoor() bool { return p.phi != nil }

// Accumulate computes g^(Πx) mod n. Anyone can run it. Large sets take the
// aggregated path — one product-tree multiply and a single large-exponent
// modexp — which returns the same value as iterated exponentiation
// (exponentiation composes: (g^a)^b = g^(ab)). Inputs are never mutated and
// the result is freshly allocated.
func (pp *PublicParams) Accumulate(primes []*big.Int) *big.Int {
	return pp.Add(pp.G, primes)
}

// Add incrementally extends an accumulation value with more primes:
// Ac' = Ac^(Πx⁺) mod n. Mathematically identical to re-accumulating the
// union. Neither ac nor primes is mutated; the result is freshly allocated.
func (pp *PublicParams) Add(ac *big.Int, primes []*big.Int) *big.Int {
	if len(primes) >= aggThreshold {
		e := getInt()
		productTree(e, primes)
		out := new(big.Int).Exp(ac, e, pp.N)
		putInt(e)
		return out
	}
	out := new(big.Int).Set(ac)
	for _, x := range primes {
		out.Exp(out, x, pp.N)
	}
	return out
}

// AccumulateFast computes the same value as Accumulate but reduces the
// combined exponent modulo φ(n) first, turning |X| modexps into one. Only
// the party that ran Setup can call it.
func (p *Params) AccumulateFast(primes []*big.Int) (*big.Int, error) {
	if p.phi == nil {
		return nil, errors.New("accumulator: fast path requires the factorization trapdoor")
	}
	e := new(big.Int).Set(one)
	for _, x := range primes {
		e.Mul(e, x)
		e.Mod(e, p.phi)
	}
	return new(big.Int).Exp(p.G, e, p.N), nil
}

// AddFast incrementally extends an accumulation value like Add, but reduces
// the combined new exponent mod φ(n) first (one modexp total). Owner only.
func (p *Params) AddFast(ac *big.Int, primes []*big.Int) (*big.Int, error) {
	if p.phi == nil {
		return nil, errors.New("accumulator: fast path requires the factorization trapdoor")
	}
	e := new(big.Int).Set(one)
	for _, x := range primes {
		e.Mul(e, x)
		e.Mod(e, p.phi)
	}
	return new(big.Int).Exp(ac, e, p.N), nil
}

// MemWit computes the membership witness for member: g raised to the
// product of every accumulated prime except one occurrence of member. It
// returns an error wrapping ErrNotMember when member is absent. Membership
// is decided by exact equality against the list (never by divisibility, so
// a composite "member" cannot fake its way in). Large sets aggregate the
// remaining exponents into one product-tree modexp; clouds serving many
// queries over one set should prefer a WitnessTree, which amortizes shared
// work across queries. Inputs are never mutated.
func (pp *PublicParams) MemWit(primes []*big.Int, member *big.Int) (*big.Int, error) {
	idx := -1
	for i, x := range primes {
		if x.Cmp(member) == 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: %v", ErrNotMember, member)
	}
	if len(primes) >= aggThreshold {
		e, r := getInt(), getInt()
		productTree(e, primes[:idx])
		productTree(r, primes[idx+1:])
		e.Mul(e, r)
		w := new(big.Int).Exp(pp.G, e, pp.N)
		putInt(e, r)
		return w, nil
	}
	w := new(big.Int).Set(pp.G)
	for i, x := range primes {
		if i == idx {
			continue
		}
		w.Exp(w, x, pp.N)
	}
	return w, nil
}

// VerifyMem checks a membership witness: mw^x ≡ Ac (mod n).
func (pp *PublicParams) VerifyMem(ac, member, witness *big.Int) bool {
	if witness == nil || member == nil || ac == nil {
		return false
	}
	if witness.Sign() <= 0 || witness.Cmp(pp.N) >= 0 {
		return false
	}
	got := new(big.Int).Exp(witness, member, pp.N)
	return got.Cmp(ac) == 0
}

// RootFactor computes the membership witnesses for every element of primes
// in O(|X| log |X|) modexps (Sander–Ta-Shma–Yung). witnesses[i] proves
// primes[i].
func (pp *PublicParams) RootFactor(primes []*big.Int) []*big.Int {
	return pp.RootFactorParallel(primes, 1)
}

// RootFactorParallel is RootFactor fanned out over up to workers
// goroutines: the recursion's two independent subtrees run concurrently
// until the worker budget is spent. workers <= 1 runs serially; larger
// values are capped by runtime.GOMAXPROCS(0). Output is identical to
// RootFactor.
func (pp *PublicParams) RootFactorParallel(primes []*big.Int, workers int) []*big.Int {
	if len(primes) == 0 {
		return nil
	}
	if maxW := runtime.GOMAXPROCS(0); workers > maxW {
		workers = maxW
	}
	out := make([]*big.Int, len(primes))
	pp.rootFactor(new(big.Int).Set(pp.G), primes, out, workers)
	return out
}

// rootFactor fills out[i] with the witness for primes[i]; out aliases the
// caller's slice so concurrent subtrees write disjoint halves.
func (pp *PublicParams) rootFactor(base *big.Int, primes []*big.Int, out []*big.Int, workers int) {
	if len(primes) == 1 {
		out[0] = base
		return
	}
	mid := len(primes) / 2
	left, right := primes[:mid], primes[mid:]
	baseR := new(big.Int).Set(base)
	for _, x := range left {
		baseR.Exp(baseR, x, pp.N)
	}
	baseL := base
	for _, x := range right {
		baseL.Exp(baseL, x, pp.N)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			pp.rootFactor(baseR, right, out[mid:], workers/2)
		}()
		pp.rootFactor(baseL, left, out[:mid], workers-workers/2)
		wg.Wait()
		return
	}
	pp.rootFactor(baseL, left, out[:mid], 1)
	pp.rootFactor(baseR, right, out[mid:], 1)
}

// MarshalSecret serializes the full parameters including φ(n) for
// owner-state persistence. Treat the output as sensitive material.
func (p *Params) MarshalSecret() ([]byte, error) {
	if p.phi == nil {
		return nil, errors.New("accumulator: no trapdoor to serialize")
	}
	out := chunkio.Append(nil, p.N.Bytes())
	out = chunkio.Append(out, p.G.Bytes())
	return chunkio.Append(out, p.phi.Bytes()), nil
}

// UnmarshalSecret parses parameters produced by MarshalSecret.
func UnmarshalSecret(data []byte) (*Params, error) {
	nb, rest, err := chunkio.Read(data)
	if err != nil {
		return nil, fmt.Errorf("accumulator: parse modulus: %w", err)
	}
	gb, rest, err := chunkio.Read(rest)
	if err != nil {
		return nil, fmt.Errorf("accumulator: parse generator: %w", err)
	}
	pb, _, err := chunkio.Read(rest)
	if err != nil {
		return nil, fmt.Errorf("accumulator: parse phi: %w", err)
	}
	p := &Params{
		PublicParams: PublicParams{N: new(big.Int).SetBytes(nb), G: new(big.Int).SetBytes(gb)},
		phi:          new(big.Int).SetBytes(pb),
	}
	if p.N.Sign() <= 0 || p.G.Sign() <= 0 || p.phi.Sign() <= 0 {
		return nil, errors.New("accumulator: invalid secret parameter encoding")
	}
	return p, nil
}

// Marshal serializes public parameters.
func (pp *PublicParams) Marshal() []byte {
	nb, gb := pp.N.Bytes(), pp.G.Bytes()
	out := make([]byte, 0, 8+len(nb)+len(gb))
	out = chunkio.Append(out, nb)
	out = chunkio.Append(out, gb)
	return out
}

// UnmarshalPublic parses parameters produced by Marshal.
func UnmarshalPublic(data []byte) (*PublicParams, error) {
	nb, rest, err := chunkio.Read(data)
	if err != nil {
		return nil, fmt.Errorf("accumulator: parse modulus: %w", err)
	}
	gb, _, err := chunkio.Read(rest)
	if err != nil {
		return nil, fmt.Errorf("accumulator: parse generator: %w", err)
	}
	pp := &PublicParams{N: new(big.Int).SetBytes(nb), G: new(big.Int).SetBytes(gb)}
	if pp.N.Sign() <= 0 || pp.G.Sign() <= 0 || pp.G.Cmp(pp.N) >= 0 {
		return nil, errors.New("accumulator: invalid parameter encoding")
	}
	return pp, nil
}

// Size returns the byte width of accumulator values and witnesses.
func (pp *PublicParams) Size() int { return (pp.N.BitLen() + 7) / 8 }

// EncodeValue serializes an accumulator value or witness at fixed width.
func (pp *PublicParams) EncodeValue(v *big.Int) []byte {
	return v.FillBytes(make([]byte, pp.Size()))
}

// DecodeValue parses a fixed-width accumulator value or witness.
func (pp *PublicParams) DecodeValue(data []byte) (*big.Int, error) {
	if len(data) != pp.Size() {
		return nil, fmt.Errorf("accumulator: value must be %d bytes, got %d", pp.Size(), len(data))
	}
	v := new(big.Int).SetBytes(data)
	if v.Sign() <= 0 || v.Cmp(pp.N) >= 0 {
		return nil, errors.New("accumulator: value outside Z_n*")
	}
	return v, nil
}
