package accumulator

import (
	"math/big"
	"sync"
)

// intPool recycles big.Int scratch values across the hot paths (product
// trees, comb evaluation, witness-tree descent). The values routinely grow
// to full exponent width (hundreds of KB for large prime sets), so reusing
// their backing arrays keeps the per-query allocation profile flat.
var intPool = sync.Pool{New: func() any { return new(big.Int) }}

// getInt borrows a scratch big.Int. Its value is unspecified; callers must
// overwrite before reading.
func getInt() *big.Int { return intPool.Get().(*big.Int) }

// putInt returns scratch values to the pool. Callers must not retain any
// reference (including aliased Bits slices) after the call.
func putInt(xs ...*big.Int) {
	for _, x := range xs {
		intPool.Put(x)
	}
}

// modCtx performs modular multiplication with caller-owned scratch so inner
// loops run allocation-free. Not safe for concurrent use; each goroutine
// takes its own.
type modCtx struct {
	n    *big.Int
	t, q big.Int
}

// mul sets z = x*y mod n. z may alias x or y.
func (m *modCtx) mul(z, x, y *big.Int) {
	m.t.Mul(x, y)
	m.q.QuoRem(&m.t, m.n, z)
}
