package accumulator

import (
	"math/big"
	"sync"
)

// maxWitnessNodes caps the memoized heap of a WitnessTree. Segments that
// would fall below the cap are recomputed per query instead of cached; at
// 1<<18 nodes every realistic benchmark set (hundreds of thousands of
// primes) is fully memoized while the bookkeeping stays under a few MB.
const maxWitnessNodes = 1 << 18

// witProductLeaf is the segment size below which subproducts are computed
// directly instead of via memoized children.
const witProductLeaf = 16

// WitnessTree answers on-demand membership-witness queries by lazily
// memoizing the recursion tree of the RootFactor algorithm
// (Sander–Ta-Shma–Yung): node (lo,hi) holds g^(Π X \ X[lo:hi]), its child
// is the node raised to the sibling segment's prime product, and the leaf
// (i,i+1) is exactly the membership witness for X[i].
//
// A cold single witness costs the same O(|X|) exponent bits as MemWit —
// split across log |X| calls — but every subsequent witness reuses all
// ancestors it shares with earlier queries, so k queries cost at most the
// bits of the O(min(k·log|X|, |X|)) distinct tree nodes they touch instead
// of k·|X|. A query load that eventually touches every member pays the
// RootFactor total, never more.
//
// The tree snapshots the prime slice it is given: the caller must not
// mutate the slice or its elements afterwards, and must discard the tree
// when the accumulated set changes (witnesses for the old set do not verify
// against the new accumulation value). All methods are safe for concurrent
// use; concurrent first touches of one node are serialized per node.
type WitnessTree struct {
	pp     *PublicParams
	primes []*big.Int
	fb     *FixedBase // optional comb for the generator; nil falls back to Exp

	// Heap-ordered node store (1-indexed, children 2k/2k+1), mirroring the
	// rootFactor mid = len/2 segmentation so outputs match it bit for bit.
	vals     []*big.Int
	prods    []*big.Int
	valOnce  []sync.Once
	prodOnce []sync.Once
}

// NewWitnessTree builds an empty (nothing yet memoized) witness tree over
// primes. fb, when non-nil, must be a comb for pp.G; it accelerates the
// top-level nodes whose base is the generator.
func (pp *PublicParams) NewWitnessTree(primes []*big.Int, fb *FixedBase) *WitnessTree {
	n := len(primes)
	// Heap size for a mid=len/2 split tree: leaves live at depth
	// ceil(log2 n), so indices stay below 2^(depth+1).
	size := 2
	for size < 4*n && size < maxWitnessNodes {
		size *= 2
	}
	return &WitnessTree{
		pp:       pp,
		primes:   primes,
		fb:       fb,
		vals:     make([]*big.Int, size),
		prods:    make([]*big.Int, size),
		valOnce:  make([]sync.Once, size),
		prodOnce: make([]sync.Once, size),
	}
}

// Len reports the number of accumulated primes the tree covers.
func (wt *WitnessTree) Len() int { return len(wt.primes) }

// Witness returns the membership witness for primes[i], identical to
// RootFactor's output for that index. The result is freshly allocated.
func (wt *WitnessTree) Witness(i int) *big.Int {
	if i < 0 || i >= len(wt.primes) {
		return nil
	}
	k, lo, hi := 1, 0, len(wt.primes)
	cur := wt.pp.G // current node value; never mutated in place
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		var next, slo, shi int // child index and sibling segment
		if i < mid {
			next, slo, shi = 2*k, mid, hi
			hi = mid
		} else {
			next, slo, shi = 2*k+1, lo, mid
			lo = mid
		}
		cur = wt.childValue(next, cur, k, slo, shi)
		k = next
	}
	return new(big.Int).Set(cur)
}

// childValue resolves child node k (= parent raised to the sibling
// segment's product), memoizing when the index fits the heap.
func (wt *WitnessTree) childValue(k int, parent *big.Int, parentIdx, slo, shi int) *big.Int {
	if k >= len(wt.vals) {
		e := wt.segmentProduct(sibIndex(k), slo, shi)
		defer putInt(e)
		return wt.exp(parent, e, parentIdx)
	}
	wt.valOnce[k].Do(func() {
		e := wt.segmentProduct(sibIndex(k), slo, shi)
		defer putInt(e)
		wt.vals[k] = wt.exp(parent, e, parentIdx)
	})
	return wt.vals[k]
}

// exp raises base^e, routing through the generator comb when the base is
// the generator itself (only the root's children qualify).
func (wt *WitnessTree) exp(base, e *big.Int, parentIdx int) *big.Int {
	if wt.fb != nil && parentIdx == 1 {
		return wt.fb.Exp(e)
	}
	return new(big.Int).Exp(base, e, wt.pp.N)
}

// sibIndex maps a child heap index to its sibling's.
func sibIndex(k int) int { return k ^ 1 }

// segmentProduct returns Π primes[lo:hi] into pooled scratch (caller
// returns it with putInt), memoizing interior products that fit the heap.
func (wt *WitnessTree) segmentProduct(k, lo, hi int) *big.Int {
	out := getInt()
	if k < len(wt.prods) && hi-lo > witProductLeaf {
		wt.prodOnce[k].Do(func() {
			mid := lo + (hi-lo)/2
			l := wt.segmentProduct(2*k, lo, mid)
			r := wt.segmentProduct(2*k+1, mid, hi)
			wt.prods[k] = new(big.Int).Mul(l, r)
			putInt(l, r)
		})
		return out.Set(wt.prods[k])
	}
	productTree(out, wt.primes[lo:hi])
	return out
}
