package accumulator

import (
	"fmt"
	"math/big"
	"math/bits"
)

// FixedBase is a Lim–Lee comb precomputation for repeated exponentiation of
// one fixed base: after a one-time table build (capBits squarings plus
// v·2^teeth multiplies), every Exp costs roughly capBits/teeth modular
// multiplies instead of the ~1.3·capBits squarings-plus-multiplies of an
// independent big.Int.Exp. It pays off when the same base (the generator g,
// or the current accumulation value during a bulk update) is raised to
// several large exponents.
//
// The exponent window is split into teeth·v combs: tooth j reads exponent
// bit j·a+k·b+t for column k and step t, so one table lookup per column
// folds `teeth` exponent bits at once. Tables are immutable after
// construction, making a FixedBase safe for concurrent Exp calls.
type FixedBase struct {
	pp      *PublicParams
	base    *big.Int
	teeth   int // comb teeth h: exponent bits folded per table lookup
	v       int // columns: tables trading build time for eval multiplies
	a, b    int // bit strides: a = tooth spacing, b = column spacing
	capBits int
	tables  [][]*big.Int // tables[k][u] = Π_{j: bit j of u} base^(2^(j·a+k·b))
}

// fixedBaseColumns is the column count v. Four columns quarter the
// squaring count of the evaluation loop at 4x the table build cost — the
// sweet spot measured on the quick-scale moduli.
const fixedBaseColumns = 4

// defaultTeeth picks the comb teeth for a capacity: wider combs amortize
// better but the table build pays v·2^teeth multiplies, so tiny capacities
// shrink the comb. Capped at 12 (16K table entries at v=4).
func defaultTeeth(capBits int) int {
	t := bits.Len(uint(capBits)) - 7 // ~log2(capBits)-7: build ≈ eval cost
	if t < 4 {
		t = 4
	}
	if t > 12 {
		t = 12
	}
	return t
}

// NewFixedBase builds a comb table for base covering exponents of up to
// capBits bits. teeth <= 0 selects a size-appropriate default. The base is
// not mutated and must lie in [1, N).
func (pp *PublicParams) NewFixedBase(base *big.Int, capBits, teeth int) (*FixedBase, error) {
	if base == nil || base.Sign() <= 0 || base.Cmp(pp.N) >= 0 {
		return nil, fmt.Errorf("accumulator: fixed base outside [1, N)")
	}
	if capBits < 1 {
		return nil, fmt.Errorf("accumulator: fixed-base capacity %d bits invalid", capBits)
	}
	if teeth <= 0 {
		teeth = defaultTeeth(capBits)
	}
	if teeth > 20 {
		return nil, fmt.Errorf("accumulator: %d comb teeth would need a %d-entry table", teeth, fixedBaseColumns<<teeth)
	}
	h, v := teeth, fixedBaseColumns
	a := (capBits + h - 1) / h
	b := (a + v - 1) / v
	a = b * v // round the tooth stride up to a whole number of columns
	fb := &FixedBase{pp: pp, base: new(big.Int).Set(base), teeth: h, v: v, a: a, b: b, capBits: a * h}

	// Anchors base^(2^(j·a+k·b)) are a pure squaring chain; big.Int.Exp with
	// a power-of-two exponent runs it at internal (Montgomery) speed.
	anchors := make([][]*big.Int, v)
	for k := range anchors {
		anchors[k] = make([]*big.Int, h)
	}
	cur := new(big.Int).Set(base)
	shift := new(big.Int).Lsh(one, uint(b))
	for m := 0; m < h*v; m++ {
		k, j := m%v, m/v
		anchors[k][j] = new(big.Int).Set(cur)
		if m < h*v-1 {
			cur.Exp(cur, shift, pp.N)
		}
	}

	// Each table entry extends the entry with its lowest set bit cleared by
	// one anchor multiply, so the 2^h-entry table costs 2^h multiplies.
	mc := modCtx{n: pp.N}
	fb.tables = make([][]*big.Int, v)
	for k := 0; k < v; k++ {
		tab := make([]*big.Int, 1<<h)
		for u := 1; u < 1<<h; u++ {
			low := u & (-u)
			rest := u ^ low
			j := bits.TrailingZeros(uint(low))
			if rest == 0 {
				tab[u] = anchors[k][j]
				continue
			}
			z := new(big.Int)
			mc.mul(z, tab[rest], anchors[k][j])
			tab[u] = z
		}
		fb.tables[k] = tab
	}
	return fb, nil
}

// CapBits reports the largest exponent bit length the table covers.
func (fb *FixedBase) CapBits() int { return fb.capBits }

// Base returns a copy of the fixed base.
func (fb *FixedBase) Base() *big.Int { return new(big.Int).Set(fb.base) }

// Exp computes base^e mod N. Exponents beyond the table capacity (or
// negative ones) fall back to big.Int.Exp on the stored base, so the result
// is always defined and identical to the naive path. Safe for concurrent
// use.
func (fb *FixedBase) Exp(e *big.Int) *big.Int {
	if e.Sign() < 0 || e.BitLen() > fb.capBits {
		return new(big.Int).Exp(fb.base, e, fb.pp.N)
	}
	mc := modCtx{n: fb.pp.N}
	r := getInt().Set(one)
	started := false
	ew := e.Bits()
	bitAt := func(i int) uint {
		wi := i / bits.UintSize
		if wi >= len(ew) {
			return 0
		}
		return uint(ew[wi]>>(uint(i)%bits.UintSize)) & 1
	}
	for t := fb.b - 1; t >= 0; t-- {
		if started {
			mc.mul(r, r, r)
		}
		for k := 0; k < fb.v; k++ {
			u := uint(0)
			for j := 0; j < fb.teeth; j++ {
				u |= bitAt(j*fb.a+k*fb.b+t) << j
			}
			if u == 0 {
				continue
			}
			if !started {
				r.Set(fb.tables[k][u])
				started = true
				continue
			}
			mc.mul(r, r, fb.tables[k][u])
		}
	}
	out := new(big.Int)
	if started {
		out.Set(r)
	} else {
		out.SetInt64(1) // e == 0
	}
	putInt(r)
	return out
}
