package accumulator

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"slicer/internal/hprime"
)

// fpParams memoizes one 512-bit parameter set across the fast-path tests;
// Setup is too slow to repeat per test case.
var (
	fpOnce   sync.Once
	fpShared *Params
)

func fpSetup(t testing.TB) *Params {
	fpOnce.Do(func() {
		p, err := Setup(512)
		if err != nil {
			panic(err)
		}
		fpShared = p
	})
	if fpShared == nil {
		t.Fatal("setup failed")
	}
	return fpShared
}

func fpPrimes(n int, tag string) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = hprime.Hash([]byte(fmt.Sprintf("fp-%s-%d", tag, i)))
	}
	return out
}

// naiveAccumulate is the pre-aggregation reference: strictly iterated
// per-prime exponentiation.
func naiveAccumulate(pp *PublicParams, base *big.Int, primes []*big.Int) *big.Int {
	out := new(big.Int).Set(base)
	for _, x := range primes {
		out.Exp(out, x, pp.N)
	}
	return out
}

func TestAccumulateAggMatchesNaive(t *testing.T) {
	pp := fpSetup(t).Public()
	for _, n := range []int{0, 1, 7, 8, 9, 64} {
		primes := fpPrimes(n, "agg")
		want := naiveAccumulate(pp, pp.G, primes)
		if got := pp.Accumulate(primes); got.Cmp(want) != 0 {
			t.Fatalf("n=%d: aggregated Accumulate diverges from naive", n)
		}
		ac := hprime.Hash([]byte("agg-base"))
		wantAdd := naiveAccumulate(pp, ac, primes)
		if got := pp.Add(ac, primes); got.Cmp(wantAdd) != 0 {
			t.Fatalf("n=%d: aggregated Add diverges from naive", n)
		}
	}
}

func TestAccumulateDoesNotMutateInputs(t *testing.T) {
	pp := fpSetup(t).Public()
	primes := fpPrimes(16, "alias")
	snaps := make([]*big.Int, len(primes))
	for i, p := range primes {
		snaps[i] = new(big.Int).Set(p)
	}
	ac := hprime.Hash([]byte("alias-base"))
	acSnap := new(big.Int).Set(ac)
	gSnap := new(big.Int).Set(pp.G)

	pp.Accumulate(primes)
	pp.Add(ac, primes)
	if _, err := pp.MemWit(primes, primes[3]); err != nil {
		t.Fatal(err)
	}
	if ac.Cmp(acSnap) != 0 {
		t.Fatal("Add mutated its accumulation-value input")
	}
	if pp.G.Cmp(gSnap) != 0 {
		t.Fatal("generator was mutated")
	}
	for i, p := range primes {
		if p.Cmp(snaps[i]) != 0 {
			t.Fatalf("prime %d was mutated", i)
		}
	}
}

func TestMemWitTypedError(t *testing.T) {
	pp := fpSetup(t).Public()
	primes := fpPrimes(10, "err")
	outsider := hprime.Hash([]byte("fp-outsider"))
	_, err := pp.MemWit(primes, outsider)
	if !errors.Is(err, ErrNotMember) {
		t.Fatalf("want ErrNotMember, got %v", err)
	}
	// A composite equal to a product of two members must NOT divide its way
	// into a witness.
	composite := new(big.Int).Mul(primes[1], primes[2])
	if _, err := pp.MemWit(primes, composite); !errors.Is(err, ErrNotMember) {
		t.Fatalf("composite member accepted: %v", err)
	}
}

func TestMemWitMatchesRootFactor(t *testing.T) {
	pp := fpSetup(t).Public()
	for _, n := range []int{1, 2, 7, 8, 33, 100} {
		primes := fpPrimes(n, "mw")
		all := pp.RootFactor(primes)
		for _, i := range []int{0, n / 2, n - 1} {
			w, err := pp.MemWit(primes, primes[i])
			if err != nil {
				t.Fatal(err)
			}
			if w.Cmp(all[i]) != 0 {
				t.Fatalf("n=%d i=%d: MemWit != RootFactor", n, i)
			}
			if !pp.VerifyMem(pp.Accumulate(primes), primes[i], w) {
				t.Fatalf("n=%d i=%d: witness does not verify", n, i)
			}
		}
	}
}

func TestFixedBaseMatchesExp(t *testing.T) {
	pp := fpSetup(t).Public()
	base := hprime.Hash([]byte("fb-base"))
	fb, err := pp.NewFixedBase(base, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	exps := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(65537),
		Product(fpPrimes(15, "fbexp")),  // 1920 bits: near capacity
		Product(fpPrimes(40, "fbover")), // over capacity: fallback path
		new(big.Int).Lsh(big.NewInt(1), 2047),
	}
	for i, e := range exps {
		want := new(big.Int).Exp(base, e, pp.N)
		if got := fb.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("exp %d (bitlen %d): comb diverges from Exp", i, e.BitLen())
		}
	}
	if fb.Base().Cmp(base) == 0 && fb.CapBits() < 2048 {
		t.Fatalf("capacity %d below requested 2048", fb.CapBits())
	}
}

func TestFixedBaseTeethSweep(t *testing.T) {
	pp := fpSetup(t).Public()
	base := hprime.Hash([]byte("fb-teeth"))
	e := Product(fpPrimes(8, "fbteeth"))
	want := new(big.Int).Exp(base, e, pp.N)
	for _, teeth := range []int{4, 7, 12} {
		fb, err := pp.NewFixedBase(base, 1100, teeth)
		if err != nil {
			t.Fatal(err)
		}
		if got := fb.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("teeth=%d: comb diverges from Exp", teeth)
		}
	}
	if _, err := pp.NewFixedBase(base, 1100, 21); err == nil {
		t.Fatal("oversized teeth accepted")
	}
	if _, err := pp.NewFixedBase(big.NewInt(0), 1100, 0); err == nil {
		t.Fatal("zero base accepted")
	}
}

func TestWitnessTreeMatchesRootFactor(t *testing.T) {
	pp := fpSetup(t).Public()
	for _, n := range []int{1, 2, 3, 9, 64, 257} {
		primes := fpPrimes(n, "wt")
		want := pp.RootFactor(primes)
		wt := pp.NewWitnessTree(primes, nil)
		if wt.Len() != n {
			t.Fatalf("n=%d: Len()=%d", n, wt.Len())
		}
		for i := 0; i < n; i++ {
			if got := wt.Witness(i); got.Cmp(want[i]) != 0 {
				t.Fatalf("n=%d i=%d: tree witness != RootFactor", n, i)
			}
		}
		if wt.Witness(-1) != nil || wt.Witness(n) != nil {
			t.Fatalf("n=%d: out-of-range index did not return nil", n)
		}
	}
}

func TestWitnessTreeWithComb(t *testing.T) {
	pp := fpSetup(t).Public()
	primes := fpPrimes(120, "wtfb")
	fb, err := pp.NewFixedBase(pp.G, 120*hprime.PrimeBits, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := pp.RootFactor(primes)
	wt := pp.NewWitnessTree(primes, fb)
	for _, i := range []int{0, 17, 59, 60, 119} {
		if got := wt.Witness(i); got.Cmp(want[i]) != 0 {
			t.Fatalf("i=%d: comb-backed tree diverges", i)
		}
	}
}

// TestWitnessTreeConcurrent hammers one tree from many goroutines; with
// -race this doubles as the pooled-scratch / lazy-memoization race test.
func TestWitnessTreeConcurrent(t *testing.T) {
	pp := fpSetup(t).Public()
	const n = 96
	primes := fpPrimes(n, "wtrace")
	want := pp.RootFactor(primes)
	fb, err := pp.NewFixedBase(pp.G, n*hprime.PrimeBits, 0)
	if err != nil {
		t.Fatal(err)
	}
	wt := pp.NewWitnessTree(primes, fb)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for k := 0; k < n; k++ {
				i := (k*7 + seed*13) % n
				if got := wt.Witness(i); got.Cmp(want[i]) != 0 {
					errs <- fmt.Errorf("goroutine %d: witness %d diverges", seed, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestProduct(t *testing.T) {
	if Product(nil).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("empty product != 1")
	}
	primes := fpPrimes(100, "prod")
	want := big.NewInt(1)
	for _, p := range primes {
		want.Mul(want, p)
	}
	if Product(primes).Cmp(want) != 0 {
		t.Fatal("product tree diverges from left fold")
	}
}

// FuzzAccumulateFastVsPublic drives random prime sets through every
// accumulate path — naive iterated, aggregated product-tree, owner
// trapdoor, fixed-base comb — and requires bit-identical results.
func FuzzAccumulateFastVsPublic(f *testing.F) {
	f.Add([]byte("seed"), uint8(3))
	f.Add([]byte{0xff, 0x00, 0x41}, uint8(12))
	f.Add([]byte(""), uint8(0))
	f.Fuzz(func(t *testing.T, seed []byte, n uint8) {
		params := fpSetup(t)
		pp := params.Public()
		count := int(n%24) + 1
		primes := make([]*big.Int, count)
		for i := range primes {
			primes[i] = hprime.HashConcat(seed, []byte{byte(i)})
		}
		want := naiveAccumulate(pp, pp.G, primes)
		if got := pp.Accumulate(primes); got.Cmp(want) != 0 {
			t.Fatal("aggregated path diverges from naive")
		}
		fast, err := params.AccumulateFast(primes)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(want) != 0 {
			t.Fatal("owner fast path diverges from naive")
		}
		fb, err := pp.NewFixedBase(pp.G, count*hprime.PrimeBits, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := fb.Exp(Product(primes)); got.Cmp(want) != 0 {
			t.Fatal("fixed-base comb diverges from naive")
		}
		// Witness paths: tree and MemWit agree with RootFactor.
		all := pp.RootFactor(primes)
		wt := pp.NewWitnessTree(primes, fb)
		idx := int(n) % count
		w, err := pp.MemWit(primes, primes[idx])
		if err != nil {
			t.Fatal(err)
		}
		if w.Cmp(all[idx]) != 0 || wt.Witness(idx).Cmp(all[idx]) != 0 {
			t.Fatal("witness paths disagree")
		}
	})
}

func BenchmarkAccumulatePublic(b *testing.B) {
	pp := fpSetup(b).Public()
	primes := fpPrimes(256, "bench-acc")
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveAccumulate(pp, pp.G, primes)
		}
	})
	b.Run("aggregated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pp.Accumulate(primes)
		}
	})
	b.Run("fixed-base", func(b *testing.B) {
		fb, err := pp.NewFixedBase(pp.G, len(primes)*hprime.PrimeBits, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fb.Exp(Product(primes))
		}
	})
}

func BenchmarkWitness(b *testing.B) {
	pp := fpSetup(b).Public()
	primes := fpPrimes(512, "bench-wit")
	b.Run("memwit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pp.MemWit(primes, primes[i%len(primes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-amortized", func(b *testing.B) {
		wt := pp.NewWitnessTree(primes, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wt.Witness(i % len(primes))
		}
	})
}
