package accumulator

import "math/big"

// productLeaf is the subproblem size below which the product tree multiplies
// sequentially; balancing buys nothing while the partial products still fit
// a few machine words.
const productLeaf = 8

// Product returns Π xs as one integer, computed with a balanced product
// tree. Multiplying balanced halves keeps every big.Int.Mul operating on
// operands of similar size, where the subquadratic multiplication kicks in —
// the sequential left fold degrades to O(k²) word operations for k primes.
// The inputs are not mutated and the result is freshly allocated.
func Product(xs []*big.Int) *big.Int {
	out := new(big.Int)
	productTree(out, xs)
	return out
}

func productTree(z *big.Int, xs []*big.Int) {
	switch {
	case len(xs) == 0:
		z.SetInt64(1)
	case len(xs) == 1:
		z.Set(xs[0])
	case len(xs) <= productLeaf:
		z.Set(xs[0])
		for _, x := range xs[1:] {
			z.Mul(z, x)
		}
	default:
		mid := len(xs) / 2
		l, r := getInt(), getInt()
		productTree(l, xs[:mid])
		productTree(r, xs[mid:])
		z.Mul(l, r)
		putInt(l, r)
	}
}
