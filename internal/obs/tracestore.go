package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the recent-ring size of a TraceStore when the
// operator does not configure one.
const DefaultTraceCapacity = 256

// StoredTrace is one finalized trace held by a TraceStore.
type StoredTrace struct {
	ID         string        `json:"id"`
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	DurationNs time.Duration `json:"durationNs"`
	Spans      []SpanRecord  `json:"spans"`
}

// WriteText renders the stored trace in the same aligned format as
// Trace.WriteText.
func (st *StoredTrace) WriteText(w io.Writer) error {
	return writeSpansText(w, st.Name, st.ID, st.DurationNs, st.Spans)
}

// TraceStore retains finalized traces in bounded memory for /debug/traces:
// a ring buffer of the most recent traces plus a side table of the slowest
// ones ever seen (so latency outliers survive ring eviction), with an
// optional sampling rate gating the ring. All methods are safe for
// concurrent use and nil-safe.
type TraceStore struct {
	mu       sync.Mutex
	capacity int
	slowCap  int
	sample   int // record 1 of every sample traces into the ring; 1 = all
	seen     uint64

	recent []StoredTrace // ring, next is the write cursor
	next   int
	filled bool

	slow []StoredTrace // slowest-first is NOT maintained; slowest set, unordered
}

// NewTraceStore creates a store retaining up to capacity recent traces
// (DefaultTraceCapacity if capacity <= 0) and capacity/8 (at least 4)
// slowest traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	slowCap := capacity / 8
	if slowCap < 4 {
		slowCap = 4
	}
	return &TraceStore{capacity: capacity, slowCap: slowCap, sample: 1}
}

// SetCapacity resizes the recent ring (dropping retained traces) and scales
// the slowest-N table; n <= 0 restores the default.
func (s *TraceStore) SetCapacity(n int) {
	if s == nil {
		return
	}
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = n
	s.slowCap = n / 8
	if s.slowCap < 4 {
		s.slowCap = 4
	}
	s.recent, s.next, s.filled = nil, 0, false
	if len(s.slow) > s.slowCap {
		s.slow = append([]StoredTrace(nil), s.slow[:s.slowCap]...)
	}
}

// SetSampling records only 1 of every n traces into the recent ring (the
// slowest-N table still sees every trace, so outliers are never sampled
// away). n <= 1 records everything.
func (s *TraceStore) SetSampling(n int) {
	if s == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.sample = n
	s.mu.Unlock()
}

// Sampling reports the configured rate.
func (s *TraceStore) Sampling() int {
	if s == nil {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sample
}

// Record finalizes a trace into the store. Nil traces and nil stores are
// no-ops.
func (s *TraceStore) Record(tr *Trace) {
	if s == nil || tr == nil {
		return
	}
	s.record(StoredTrace{
		ID:         tr.ID(),
		Name:       tr.Name(),
		Start:      tr.Start(),
		DurationNs: tr.Elapsed(),
		Spans:      tr.Spans(),
	})
}

// record is the clock-free core of Record, split out so tests can insert
// traces with crafted durations.
func (s *TraceStore) record(st StoredTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if s.sample <= 1 || s.seen%uint64(s.sample) == 1 {
		if s.recent == nil {
			s.recent = make([]StoredTrace, s.capacity)
		}
		s.recent[s.next] = st
		s.next++
		if s.next == len(s.recent) {
			s.next, s.filled = 0, true
		}
	}
	// Slowest-N retention: replace the fastest retained trace when full.
	if len(s.slow) < s.slowCap {
		s.slow = append(s.slow, st)
		return
	}
	fastest, min := -1, st.DurationNs
	for i := range s.slow {
		if s.slow[i].DurationNs < min {
			fastest, min = i, s.slow[i].DurationNs
		}
	}
	if fastest >= 0 {
		s.slow[fastest] = st
	}
}

// Seen reports how many traces have been offered to the store.
func (s *TraceStore) Seen() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// Recent returns the retained ring contents, newest first.
func (s *TraceStore) Recent() []StoredTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if s.filled {
		n = len(s.recent)
	}
	out := make([]StoredTrace, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the cursor, wrapping.
		idx := (s.next - 1 - i + len(s.recent)) % len(s.recent)
		out = append(out, s.recent[idx])
	}
	return out
}

// Slowest returns the retained latency outliers, slowest first.
func (s *TraceStore) Slowest() []StoredTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]StoredTrace, len(s.slow))
	copy(out, s.slow)
	s.mu.Unlock()
	// Insertion sort: the table is tiny (capacity/8).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurationNs > out[j-1].DurationNs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Get looks a trace up by ID in the ring and the slowest table.
func (s *TraceStore) Get(id string) (StoredTrace, bool) {
	if s == nil {
		return StoredTrace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if s.filled {
		n = len(s.recent)
	}
	for i := 0; i < n; i++ {
		idx := (s.next - 1 - i + len(s.recent)) % len(s.recent)
		if s.recent[idx].ID == id {
			return s.recent[idx], true
		}
	}
	for i := range s.slow {
		if s.slow[i].ID == id {
			return s.slow[i], true
		}
	}
	return StoredTrace{}, false
}

// WriteJSON emits {"seen": N, "sampling": S, "recent": [...], "slowest":
// [...]}, the /debug/traces list payload.
func (s *TraceStore) WriteJSON(w io.Writer) error {
	payload := struct {
		Seen     uint64        `json:"seen"`
		Sampling int           `json:"sampling"`
		Recent   []StoredTrace `json:"recent"`
		Slowest  []StoredTrace `json:"slowest"`
	}{s.Seen(), s.Sampling(), s.Recent(), s.Slowest()}
	if payload.Recent == nil {
		payload.Recent = []StoredTrace{}
	}
	if payload.Slowest == nil {
		payload.Slowest = []StoredTrace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
