// Package obs is the stdlib-only observability layer shared by every
// Slicer process: a concurrent-safe metrics registry (counters, gauges,
// histograms with fixed latency buckets) exporting both Prometheus
// text-exposition format and JSON, structured logging helpers on log/slog,
// lightweight span tracing for one search request end-to-end, and an
// opt-in admin HTTP server (/metrics, /healthz, /debug/vars, pprof).
//
// Everything is nil-safe: methods on a nil *Registry return nil
// instruments, and every instrument method on a nil receiver is a no-op
// that does not even read the clock, so instrumented hot paths are
// zero-cost when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the fixed histogram bucket upper bounds, in
// seconds. They span 25µs (a cached-witness lookup) to 10s (a full-scale
// RootFactor rebuild), roughly logarithmically.
var DefLatencyBuckets = []float64{
	25e-6, 100e-6, 250e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3,
	50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

// DefSizeBuckets are histogram bucket upper bounds for payload sizes, in
// bytes: powers of four from 64B to the 64MiB wire message cap.
var DefSizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536,
	262144, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// atomicFloat is an atomic float64 (bit-cast into a uint64).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative). No-op on a nil gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc / Dec adjust by one. No-ops on a nil gauge.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets and tracks their sum.
// Observations are in seconds when the histogram records latencies (the
// default buckets), but any unit works with custom buckets.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf bucket at the end
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomicFloat

	// exemplars holds the most recent traced observation per bucket
	// (index-aligned with counts); win, when set, mirrors observations
	// into a sliding-window ring for live quantiles.
	exemplars []atomic.Pointer[Exemplar]
	win       atomic.Pointer[windowRing]
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	if w := h.win.Load(); w != nil {
		w.observe(v)
	}
}

// Start reads the clock for a later ObserveSince. On a nil histogram it
// returns the zero time without touching the clock.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the seconds elapsed since start. No-op on a nil
// histogram.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records d in seconds. No-op on a nil histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count reports the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum reports the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (Prometheus "le" semantics); the final pair is +Inf / Count().
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered instrument under its full (labeled) name.
type metric struct {
	name   string // full name, possibly with {labels}
	family string // name up to the label block
	labels string // inside the braces, "" when unlabeled
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is a concurrent-safe collection of named metrics. The zero
// value is not usable; use NewRegistry. A nil *Registry is valid
// everywhere and yields nil (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metric
	help     map[string]string // by family
	vecs     map[string]*vec   // labeled vectors by family
	windowed map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  make(map[string]*metric),
		help:     make(map[string]string),
		vecs:     make(map[string]*vec),
		windowed: make(map[string]*Histogram),
	}
}

// splitName separates `family{labels}` into its parts.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// Label renders a metric name with label pairs: Label("x_total", "op",
// "eq") == `x_total{op="eq"}`. Pairs render in the given order.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register looks up or creates the metric under name, enforcing kind
// consistency within a family.
func (r *Registry) register(name, help string, kind metricKind, create func() *metric) *metric {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind && !(m.kind == kindGauge && kind == kindGaugeFunc || m.kind == kindGaugeFunc && kind == kindGauge) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := create()
	m.name, m.family, m.labels, m.kind = name, family, labels, kind
	r.metrics[name] = m
	if help != "" {
		r.help[family] = help
	}
	return m
}

// Counter returns the counter registered under name (with optional
// {labels}), creating it on first use. Nil-safe: a nil registry returns a
// nil counter whose methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (uptime, goroutine counts, ...). Re-registering the same name keeps the
// first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGaugeFunc, func() *metric {
		return &metric{fn: fn}
	})
}

// Histogram returns the histogram registered under name, creating it with
// the fixed latency buckets on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramBuckets(name, help, DefLatencyBuckets)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds.
func (r *Registry) HistogramBuckets(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, func() *metric {
		return &metric{hist: newHistogram(buckets)}
	}).hist
}

// sortedMetrics snapshots the registered metrics ordered by family then
// full name, for deterministic export.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].name < out[j].name
	})
	return out
}

func (r *Registry) helpFor(family string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[family]
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges a metric's own labels with an extra pair (used for the
// histogram "le" label).
func joinLabels(labels, extra string) string {
	switch {
	case labels == "":
		return "{" + extra + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered. Safe to call
// concurrently with metric updates. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.sortedMetrics() {
		if m.family != lastFamily {
			if help := r.helpFor(m.family); help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, m.kind)
			lastFamily = m.family
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.family, braced(m.labels), m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", m.family, braced(m.labels), formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s%s %s\n", m.family, braced(m.labels), formatFloat(m.fn()))
		case kindHistogram:
			bounds, cum := m.hist.Buckets()
			for i, le := range bounds {
				fmt.Fprintf(&b, "%s_bucket%s %d", m.family, joinLabels(m.labels, `le="`+formatFloat(le)+`"`), cum[i])
				// OpenMetrics exemplar syntax: link the bucket to the most
				// recent traced observation that landed in it.
				if e := m.hist.bucketExemplar(i); e != nil {
					fmt.Fprintf(&b, " # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
				}
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.family, braced(m.labels), formatFloat(m.hist.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.family, braced(m.labels), m.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every metric as one JSON object keyed by full metric
// name; histograms expand into {count, sum, buckets}. Deterministically
// ordered. No-op on a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	var b strings.Builder
	b.WriteString("{")
	for i, m := range r.sortedMetrics() {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n  %q: ", m.name)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%d", m.counter.Value())
		case kindGauge:
			b.WriteString(formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			b.WriteString(formatFloat(m.fn()))
		case kindHistogram:
			bounds, cum := m.hist.Buckets()
			b.WriteString("{\"count\": ")
			fmt.Fprintf(&b, "%d", m.hist.Count())
			fmt.Fprintf(&b, ", \"sum\": %s, \"buckets\": {", formatFloat(m.hist.Sum()))
			for j, le := range bounds {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%q: %d", formatFloat(le), cum[j])
			}
			b.WriteString("}}")
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens the registry into name -> value: counters and gauges
// map directly, histograms contribute "<name>/count" and "<name>/sum".
// Used by the bench harness to diff per-experiment registry deltas.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, m := range r.sortedMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = float64(m.counter.Value())
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			out[m.name+"/count"] = float64(m.hist.Count())
			out[m.name+"/sum"] = m.hist.Sum()
		}
	}
	return out
}

// Delta returns after-minus-before for every key that changed (keys absent
// from before count from zero). Used to attribute registry movement to one
// experiment.
func Delta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}
