package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefWindowSubCount and DefWindowSubWidth shape the default sliding
// window: 12 sub-windows of 10s give a 2-minute live view that advances in
// 10-second steps — wide enough to smooth scheduler noise, narrow enough
// that a latency regression shows within seconds.
const (
	DefWindowSubCount = 12
	DefWindowSubWidth = 10 * time.Second
)

// WindowOptions configures a sliding-window histogram ring. The zero value
// selects the defaults (12 x 10s, wall clock).
type WindowOptions struct {
	// SubWindows is the number of ring slots (default DefWindowSubCount).
	SubWindows int
	// Width is the span of one sub-window (default DefWindowSubWidth).
	Width time.Duration
	// Clock supplies time to the ring. It defaults to time.Now at this
	// single injection point; every evaluation path (observe, merge,
	// quantile, SLO burn rate) goes through the injected clock, so tests
	// and deterministic replays never touch the wall clock.
	Clock func() time.Time
}

func (w WindowOptions) withDefaults() WindowOptions {
	if w.SubWindows <= 0 {
		w.SubWindows = DefWindowSubCount
	}
	if w.Width <= 0 {
		w.Width = DefWindowSubWidth
	}
	if w.Clock == nil {
		w.Clock = time.Now
	}
	return w
}

// WindowSnapshot is the merged live view of a windowed histogram: the
// observation count, sum and bucket-interpolated quantile estimates over
// the ring's span. Quantiles are estimated by linear interpolation inside
// the containing bucket (Prometheus histogram_quantile semantics), so the
// estimate is exact to within the width of that bucket; observations past
// the last finite bound report the last finite bound.
type WindowSnapshot struct {
	WindowSeconds float64 `json:"windowSeconds"`
	Count         uint64  `json:"count"`
	Sum           float64 `json:"sum"`
	P50           float64 `json:"p50"`
	P90           float64 `json:"p90"`
	P99           float64 `json:"p99"`
	P999          float64 `json:"p999"`
}

// slotEmpty marks a slot that has never held a sub-window. It cannot be a
// plain -1: pre-epoch injected clocks yield legitimate negative window
// indices.
const slotEmpty = math.MinInt64

// windowSlot is one sub-window of observations.
type windowSlot struct {
	index  int64 // absolute window index this slot holds; slotEmpty = unused
	counts []uint64
	total  uint64
	sum    float64
}

// windowRing is a ring of sub-windows sharing the parent histogram's
// bucket bounds. All methods are safe for concurrent use; the ring
// advances lazily on both writes and reads, driven by the injected clock.
type windowRing struct {
	width  time.Duration
	bounds []float64 // shared with the parent histogram; read-only
	now    func() time.Time

	mu    sync.Mutex
	slots []windowSlot
}

func newWindowRing(bounds []float64, opts WindowOptions) *windowRing {
	opts = opts.withDefaults()
	r := &windowRing{width: opts.Width, bounds: bounds, now: opts.Clock}
	r.slots = make([]windowSlot, opts.SubWindows)
	for i := range r.slots {
		r.slots[i] = windowSlot{index: slotEmpty, counts: make([]uint64, len(bounds)+1)}
	}
	return r
}

// span reports the full live view the ring can serve.
func (r *windowRing) span() time.Duration { return time.Duration(len(r.slots)) * r.width }

// windowIndex maps a time to its absolute window index.
func (r *windowRing) windowIndex(t time.Time) int64 {
	idx := t.UnixNano() / int64(r.width)
	if t.UnixNano() < 0 && t.UnixNano()%int64(r.width) != 0 {
		idx-- // floor division for pre-epoch fake clocks
	}
	return idx
}

// slotFor returns the (reset if stale) slot for the absolute index idx.
// Caller holds r.mu.
func (r *windowRing) slotFor(idx int64) *windowSlot {
	pos := int(((idx % int64(len(r.slots))) + int64(len(r.slots))) % int64(len(r.slots)))
	s := &r.slots[pos]
	if s.index != idx {
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.index, s.total, s.sum = idx, 0, 0
	}
	return s
}

// observe records one value into the current sub-window.
func (r *windowRing) observe(v float64) {
	idx := r.windowIndex(r.now())
	b := sort.SearchFloat64s(r.bounds, v)
	r.mu.Lock()
	s := r.slotFor(idx)
	s.counts[b]++
	s.total++
	s.sum += v
	r.mu.Unlock()
}

// view merges the sub-windows covering the trailing span (clamped to the
// ring's full span, floor one sub-window) into per-bucket counts. The
// returned slice is freshly allocated; effective reports the merged span.
func (r *windowRing) view(span time.Duration) (counts []uint64, total uint64, sum float64, effective time.Duration) {
	k := int((span + r.width - 1) / r.width)
	if k < 1 {
		k = 1
	}
	if k > len(r.slots) {
		k = len(r.slots)
	}
	idx := r.windowIndex(r.now())
	counts = make([]uint64, len(r.bounds)+1)
	r.mu.Lock()
	for i := range r.slots {
		s := &r.slots[i]
		if s.index == slotEmpty || s.index > idx || s.index <= idx-int64(k) {
			continue // empty, stale, or (clock rewound) future slot
		}
		for b, c := range s.counts {
			counts[b] += c
		}
		total += s.total
		sum += s.sum
	}
	r.mu.Unlock()
	return counts, total, sum, time.Duration(k) * r.width
}

// snapshot merges the full ring into a WindowSnapshot.
func (r *windowRing) snapshot() WindowSnapshot {
	counts, total, sum, eff := r.view(r.span())
	return WindowSnapshot{
		WindowSeconds: eff.Seconds(),
		Count:         total,
		Sum:           sum,
		P50:           quantileFromBuckets(r.bounds, counts, total, 0.5),
		P90:           quantileFromBuckets(r.bounds, counts, total, 0.9),
		P99:           quantileFromBuckets(r.bounds, counts, total, 0.99),
		P999:          quantileFromBuckets(r.bounds, counts, total, 0.999),
	}
}

// quantile estimates one quantile over the trailing span.
func (r *windowRing) quantile(q float64, span time.Duration) float64 {
	counts, total, _, _ := r.view(span)
	return quantileFromBuckets(r.bounds, counts, total, q)
}

// quantileFromBuckets estimates the q-quantile of a bucketed distribution
// by linear interpolation inside the containing bucket: the error bound is
// the containing bucket's width (the estimate is exact when observations
// are uniform within the bucket). Observations in the +Inf bucket report
// the last finite bound; an empty distribution reports 0.
func quantileFromBuckets(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] // +Inf bucket
			}
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			return lower + (bounds[i]-lower)*(target-cum)/float64(c)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// goodFraction estimates the fraction of observations at or below target,
// interpolating inside the bucket containing the target. An empty
// distribution counts as all-good (an idle service is not burning budget).
func goodFraction(bounds []float64, counts []uint64, total uint64, target float64) float64 {
	if total == 0 {
		return 1
	}
	var good float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if i >= len(bounds) {
			break // +Inf bucket: all above any finite target
		}
		upper := bounds[i]
		if upper <= target {
			good += float64(c)
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		if target > lower && upper > lower {
			good += float64(c) * (target - lower) / (upper - lower)
		}
		break
	}
	f := good / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// windowQuantiles are the quantile gauges exported for every windowed
// histogram as <family>_window{...,quantile="pXX"}.
var windowQuantiles = []struct {
	label string
	q     float64
}{
	{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}, {"p999", 0.999},
}

// WindowedHistogram is Histogram plus a sliding-window ring with the
// default shape (12 x 10s): the cumulative series keeps exporting as
// before, and live p50/p90/p99/p999 gauges appear under
// <family>_window{...,quantile="pXX"}.
func (r *Registry) WindowedHistogram(name, help string) *Histogram {
	return r.WindowedHistogramOpts(name, help, DefLatencyBuckets, WindowOptions{})
}

// WindowedHistogramOpts is WindowedHistogram with explicit buckets and
// window shape. Calling it on an already-windowed histogram keeps the
// first ring (and its clock).
func (r *Registry) WindowedHistogramOpts(name, help string, buckets []float64, opts WindowOptions) *Histogram {
	if r == nil {
		return nil
	}
	h := r.HistogramBuckets(name, help, buckets)
	ring := newWindowRing(h.bounds, opts)
	if !h.win.CompareAndSwap(nil, ring) {
		return h
	}
	r.mu.Lock()
	r.windowed[name] = h
	r.mu.Unlock()
	family, labels := splitName(name)
	whelp := "Sliding-window quantile estimate of " + family + " (bucket-interpolated)."
	for _, wq := range windowQuantiles {
		q := wq.q
		gname := family + "_window{" + mergeLabelPairs(labels, "quantile", wq.label) + "}"
		r.GaugeFunc(gname, whelp, func() float64 { return ring.quantile(q, ring.span()) })
	}
	return h
}

// Window merges the histogram's sliding-window ring into a live snapshot.
// The zero WindowSnapshot is returned for nil or non-windowed histograms.
func (h *Histogram) Window() WindowSnapshot {
	if h == nil {
		return WindowSnapshot{}
	}
	w := h.win.Load()
	if w == nil {
		return WindowSnapshot{}
	}
	return w.snapshot()
}

// Windowed reports whether the histogram carries a sliding-window ring.
func (h *Histogram) Windowed() bool {
	return h != nil && h.win.Load() != nil
}

// Windows snapshots every windowed histogram by registered name — the
// Snapshot API the bench harness, stats RPCs and slicer-cli consume.
func (r *Registry) Windows() map[string]WindowSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.windowed))
	for name, h := range r.windowed {
		hists[name] = h
	}
	r.mu.Unlock()
	out := make(map[string]WindowSnapshot, len(hists))
	for name, h := range hists {
		out[name] = h.Window()
	}
	return out
}

// WindowSnapshotFor snapshots one windowed histogram by registered name.
func (r *Registry) WindowSnapshotFor(name string) (WindowSnapshot, bool) {
	if r == nil {
		return WindowSnapshot{}, false
	}
	r.mu.Lock()
	h, ok := r.windowed[name]
	r.mu.Unlock()
	if !ok {
		return WindowSnapshot{}, false
	}
	return h.Window(), true
}

// histogramNamed resolves a registered histogram by its full name.
func (r *Registry) histogramNamed(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.kind == kindHistogram {
		return m.hist
	}
	return nil
}
