package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req")
	end := tr.Span("alpha")
	time.Sleep(2 * time.Millisecond)
	end()
	h := NewRegistry().Histogram("x_seconds", "")
	done := StartPhase(h, tr, "beta")
	done()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Phase != "alpha" || spans[0].Duration < time.Millisecond {
		t.Errorf("alpha span = %+v", spans[0])
	}
	if spans[1].Phase != "beta" || spans[1].Offset < spans[0].Offset {
		t.Errorf("beta span = %+v", spans[1])
	}
	if h.Count() != 1 {
		t.Errorf("StartPhase histogram count = %d, want 1", h.Count())
	}

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"trace req", "alpha", "beta"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, buf.String())
		}
	}
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal trace: %v", err)
	}
	var parsed struct {
		Name  string       `json:"name"`
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatalf("unmarshal trace: %v", err)
	}
	if parsed.Name != "req" || len(parsed.Spans) != 2 {
		t.Errorf("trace JSON = %+v", parsed)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			end := tr.Span(fmt.Sprintf("token-%d", i))
			end()
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 16 {
		t.Errorf("got %d spans, want 16", got)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	lg.Info("hidden")
	lg.Warn("visible", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info line passed a warn-level logger")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, out)
	}
	if rec["msg"] != "visible" || rec["k"].(float64) != 1 {
		t.Errorf("log record = %v", rec)
	}

	if _, err := NewLogger(io.Discard, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(io.Discard, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	Nop().Error("into the void") // must not panic
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "A demo counter.").Add(9)
	store := NewTraceStore(8)
	demo := NewTrace("admin-demo")
	endSpan := demo.Span("phase-a")
	endSpan()
	store.Record(demo)
	a, err := StartAdmin("127.0.0.1:0", reg, store, Nop())
	if err != nil {
		t.Fatalf("StartAdmin: %v", err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "demo_total 9") ||
		!strings.Contains(body, "slicer_process_goroutines") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/metrics?format=json = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/debug/vars = %d", code)
		_ = body
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get("/debug/traces"); code != 200 || !json.Valid([]byte(body)) ||
		!strings.Contains(body, demo.ID()) {
		t.Errorf("/debug/traces = %d %q", code, body)
	}
	if code, body := get("/debug/traces?id=" + demo.ID()); code != 200 ||
		!strings.Contains(body, "admin-demo") || !strings.Contains(body, "phase-a") {
		t.Errorf("/debug/traces?id = %d %q", code, body)
	}
	if code, _ := get("/debug/traces?id=doesnotexist"); code != 404 {
		t.Errorf("missing trace id = %d, want 404", code)
	}
}
