package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSLOBurnRate drives one objective through the full ok → warning →
// breach → ok cycle on an injectable clock, with every burn rate
// hand-computed. Ring: 6 x 10s. Objective: p(latency <= 100ms) >= 99%
// over 60s, so the error budget is 1% and burn = badFraction / 0.01.
func TestSLOBurnRate(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock(time.Unix(100000, 0))
	h := reg.WindowedHistogramOpts("m_seconds", "", []float64{0.1, 1},
		WindowOptions{SubWindows: 6, Width: 10 * time.Second, Clock: clk.Now})

	engine := NewEngine(reg, []Objective{{
		Name:      "search",
		Metric:    "m_seconds",
		Target:    100 * time.Millisecond,
		GoodRatio: 0.99,
		Window:    time.Minute,
	}}, EngineOptions{})
	var breaches []SLOStatus
	engine.OnBreach(func(st SLOStatus) { breaches = append(breaches, st) })

	status := func() SLOStatus {
		sts := engine.Evaluate()
		if len(sts) != 1 {
			t.Fatalf("Evaluate returned %d statuses, want 1", len(sts))
		}
		return sts[0]
	}

	// Phase 1: 1000 good observations -> ok, zero burn.
	for i := 0; i < 1000; i++ {
		h.Observe(0.05)
	}
	st := status()
	if st.State != "ok" || st.FastBurn != 0 || st.SlowBurn != 0 || st.GoodFraction != 1 {
		t.Fatalf("phase 1 = %+v, want ok with zero burn", st)
	}

	// Phase 2: next sub-window turns fully bad with 100 slow requests.
	// Fast window (one 10s slot): 100/100 bad -> burn 1/0.01 = 100.
	// Slow window (60s): 100/1100 bad -> burn (100/1100)/0.01 = 9.0909...
	// Fast exceeds the page threshold but slow does not -> warning only.
	clk.Advance(10 * time.Second)
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	st = status()
	if st.State != "warning" {
		t.Fatalf("phase 2 state = %q, want warning (%+v)", st.State, st)
	}
	if !approxEq(st.FastBurn, 100) || !approxEq(st.SlowBurn, (100.0/1100)/0.01) {
		t.Errorf("phase 2 burns = %v / %v, want 100 / %v", st.FastBurn, st.SlowBurn, (100.0/1100)/0.01)
	}
	if len(breaches) != 0 {
		t.Fatalf("warning fired the breach callback: %+v", breaches)
	}

	// Phase 3: 400 more bad in the same sub-window. Slow window is now
	// 500/1500 bad -> burn 33.33 >= 14.4; fast stays at 100 -> breach.
	// The window p99 (target 0.99*1500 = 1485) interpolates inside the
	// second bucket: 0.1 + 0.9*(1485-1000)/500 = 0.973.
	for i := 0; i < 400; i++ {
		h.Observe(0.5)
	}
	st = status()
	if st.State != "breach" {
		t.Fatalf("phase 3 state = %q, want breach (%+v)", st.State, st)
	}
	if !approxEq(st.SlowBurn, (500.0/1500)/0.01) || !approxEq(st.FastBurn, 100) {
		t.Errorf("phase 3 burns = %v / %v", st.FastBurn, st.SlowBurn)
	}
	if !approxEq(st.P99, 0.973) {
		t.Errorf("phase 3 p99 = %v, want 0.973", st.P99)
	}
	if len(breaches) != 1 || breaches[0].Name != "search" {
		t.Fatalf("breach callbacks = %+v, want exactly one for search", breaches)
	}

	// Re-evaluating inside the breach must not re-fire the callback or
	// re-count the transition.
	_ = status()
	if len(breaches) != 1 {
		t.Fatalf("re-evaluation re-fired the breach callback (%d)", len(breaches))
	}

	// Phase 4: the clock leaves every observation behind; an idle service
	// burns nothing -> back to ok.
	clk.Advance(70 * time.Second)
	st = status()
	if st.State != "ok" || st.FastBurn != 0 || st.SlowBurn != 0 || st.Count != 0 {
		t.Fatalf("phase 4 = %+v, want idle ok", st)
	}

	// The exported series pin the whole journey: final state gauge 0, one
	// transition into each visited state, burn gauges back at zero.
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		`slicer_slo_state{slo="search"}`:                          0,
		`slicer_slo_burn_rate{slo="search",window="fast"}`:        0,
		`slicer_slo_burn_rate{slo="search",window="slow"}`:        0,
		`slicer_slo_transitions_total{slo="search",to="warning"}`: 1,
		`slicer_slo_transitions_total{slo="search",to="breach"}`:  1,
		`slicer_slo_transitions_total{slo="search",to="ok"}`:      1,
	} {
		if got := snap[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestSLOMissingMetric checks that an objective over an unregistered (or
// un-windowed) series reports Missing instead of alerting.
func TestSLOMissingMetric(t *testing.T) {
	reg := NewRegistry()
	reg.HistogramBuckets("plain_seconds", "", []float64{1}) // not windowed
	engine := NewEngine(reg, []Objective{
		{Name: "ghost", Metric: "never_registered", Target: time.Second, GoodRatio: 0.99, Window: time.Minute},
		{Name: "flat", Metric: "plain_seconds", Target: time.Second, GoodRatio: 0.99, Window: time.Minute},
	}, EngineOptions{})
	for _, st := range engine.Evaluate() {
		if !st.Missing || st.State != "ok" {
			t.Errorf("%s = %+v, want missing/ok", st.Name, st)
		}
	}

	var buf bytes.Buffer
	if err := engine.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Objectives []SLOStatus `json:"objectives"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if len(payload.Objectives) != 2 {
		t.Errorf("objectives = %d, want 2", len(payload.Objectives))
	}
}

// TestParseObjectives covers the -slo grammar: inline specs, defaults,
// aliases, config files and every validation error.
func TestParseObjectives(t *testing.T) {
	aliases := map[string]string{"rpc:search": `slicer_rpc_request_seconds{method="cloud.search",server="cloud"}`}

	objs, err := ParseObjectives("name=search,metric=rpc:search,target=250ms,good=0.999,window=5m", aliases)
	if err != nil {
		t.Fatal(err)
	}
	want := Objective{
		Name:      "search",
		Metric:    aliases["rpc:search"],
		Target:    250 * time.Millisecond,
		GoodRatio: 0.999,
		Window:    5 * time.Minute,
	}
	if len(objs) != 1 || objs[0] != want {
		t.Errorf("parsed = %+v, want %+v", objs, want)
	}

	// Defaults: good 0.99, window = the default ring span, name = metric.
	objs, err = ParseObjectives("metric=m_seconds,target=1s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o := objs[0]; o.Name != "m_seconds" || o.GoodRatio != 0.99 ||
		o.Window != time.Duration(DefWindowSubCount)*DefWindowSubWidth {
		t.Errorf("defaults = %+v", o)
	}

	// Two objectives separated by ';'.
	objs, err = ParseObjectives("metric=a,target=1s;metric=b,target=2s", nil)
	if err != nil || len(objs) != 2 {
		t.Fatalf("multi-spec = %+v, %v", objs, err)
	}

	// @file form with comments and blank lines.
	path := filepath.Join(t.TempDir(), "slo.conf")
	conf := "# latency objectives\n\nname=search,metric=a,target=100ms\nname=update,metric=b,target=1s # trailing comment\n"
	if err := os.WriteFile(path, []byte(conf), 0o600); err != nil {
		t.Fatal(err)
	}
	objs, err = ParseObjectives("@"+path, nil)
	if err != nil || len(objs) != 2 || objs[0].Name != "search" || objs[1].Name != "update" {
		t.Fatalf("@file = %+v, %v", objs, err)
	}

	for _, bad := range []string{
		"target=1s",                       // metric missing
		"metric=a",                        // target missing
		"metric=a,target=-1s",             // negative target
		"metric=a,target=1s,good=1",       // good out of range
		"metric=a,target=1s,good=0",       // good out of range
		"metric=a,target=1s,window=0s",    // window must be positive
		"metric=a,target=1s,shape=square", // unknown key
		"metric=a,target=1s,good",         // not key=value
	} {
		if _, err := ParseObjectives(bad, nil); err == nil {
			t.Errorf("ParseObjectives(%q) accepted invalid spec", bad)
		}
	}
	if _, err := ParseObjectives("@"+filepath.Join(t.TempDir(), "absent.conf"), nil); err == nil {
		t.Error("missing config file not reported")
	}

	if objs, err := ParseObjectives("  ", nil); err != nil || objs != nil {
		t.Errorf("blank spec = %+v, %v", objs, err)
	}
}

// TestSLOAliasesInText checks WriteText renders the missing-metric hint.
func TestSLOWriteText(t *testing.T) {
	engine := NewEngine(NewRegistry(), []Objective{
		{Name: "ghost", Metric: "gone", Target: time.Second, GoodRatio: 0.99, Window: time.Minute},
	}, EngineOptions{})
	var buf bytes.Buffer
	if err := engine.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not collecting") {
		t.Errorf("missing-metric text = %q", buf.String())
	}
}
