package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLOState is the alerting state of one objective.
type SLOState int

const (
	SLOOK SLOState = iota
	SLOWarning
	SLOBreach
)

func (s SLOState) String() string {
	switch s {
	case SLOWarning:
		return "warning"
	case SLOBreach:
		return "breach"
	}
	return "ok"
}

// Multi-window multi-burn-rate thresholds (Google SRE workbook defaults):
// burn rate is the error budget consumption speed relative to the
// objective (burn 1 = exactly exhausting the budget over the SLO window).
// A page requires BOTH the fast and the slow window to burn hot, so a
// brief spike (fast-only) or an old, already-recovered incident
// (slow-only) does not alert.
const (
	DefFastBurnThreshold = 14.4
	DefSlowBurnThreshold = 6.0
)

// Objective is one declarative latency SLO: GoodRatio of observations on
// Metric must land at or under Target, judged over a rolling Window.
type Objective struct {
	Name      string        // display name, e.g. "search"
	Metric    string        // registered windowed-histogram name
	Target    time.Duration // latency bound
	GoodRatio float64       // e.g. 0.99 for "99% of requests"
	Window    time.Duration // rolling evaluation window (clamped to the ring span)
}

// SLOStatus is one objective's evaluated state.
type SLOStatus struct {
	Name          string  `json:"name"`
	Metric        string  `json:"metric"`
	TargetSeconds float64 `json:"targetSeconds"`
	GoodRatio     float64 `json:"goodRatio"`
	WindowSeconds float64 `json:"windowSeconds"`
	State         string  `json:"state"`
	FastBurn      float64 `json:"fastBurn"`
	SlowBurn      float64 `json:"slowBurn"`
	GoodFraction  float64 `json:"goodFraction"`
	Count         uint64  `json:"count"`
	P99           float64 `json:"p99"`
	ExemplarTrace string  `json:"exemplarTrace,omitempty"`
	Missing       bool    `json:"missing,omitempty"`
}

// EngineOptions tunes an SLO engine; the zero value selects the defaults.
type EngineOptions struct {
	FastBurnThreshold float64 // default DefFastBurnThreshold
	SlowBurnThreshold float64 // default DefSlowBurnThreshold
	Logger            *slog.Logger
}

// Engine evaluates declarative latency objectives against windowed
// histograms in a registry, exports state/burn-rate gauges and transition
// counters, and fires callbacks on transition to breach (the continuous
// profiler's trigger). Evaluation reads only the histograms' sliding
// rings, whose time comes from their injected clocks — Evaluate itself
// never touches the wall clock, so tests drive the whole ok → warning →
// breach → ok cycle deterministically.
type Engine struct {
	reg         *Registry
	fast, slow  float64
	logger      *slog.Logger
	stateVec    *GaugeVec
	burnVec     *GaugeVec
	transitions *CounterVec

	mu         sync.Mutex
	objectives []Objective
	states     map[string]SLOState
	last       []SLOStatus
	evaluated  bool
	onBreach   []func(SLOStatus)
}

// NewEngine builds an engine over reg for the given objectives. A nil
// registry or empty objective list yields a usable engine that evaluates
// to nothing.
func NewEngine(reg *Registry, objectives []Objective, opts EngineOptions) *Engine {
	if opts.FastBurnThreshold <= 0 {
		opts.FastBurnThreshold = DefFastBurnThreshold
	}
	if opts.SlowBurnThreshold <= 0 {
		opts.SlowBurnThreshold = DefSlowBurnThreshold
	}
	if opts.Logger == nil {
		opts.Logger = Nop()
	}
	return &Engine{
		reg:    reg,
		fast:   opts.FastBurnThreshold,
		slow:   opts.SlowBurnThreshold,
		logger: opts.Logger,
		stateVec: reg.GaugeVec("slicer_slo_state",
			"SLO state per objective: 0 ok, 1 warning, 2 breach.", []string{"slo"}),
		burnVec: reg.GaugeVec("slicer_slo_burn_rate",
			"Error-budget burn rate per objective and evaluation window.", []string{"slo", "window"}),
		transitions: reg.CounterVec("slicer_slo_transitions_total",
			"SLO state transitions, by objective and destination state.", []string{"slo", "to"}),
		objectives: append([]Objective(nil), objectives...),
		states:     make(map[string]SLOState),
	}
}

// Objectives returns the configured objectives.
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Objective(nil), e.objectives...)
}

// OnBreach registers fn to run (synchronously, outside the engine lock)
// whenever an objective transitions into breach.
func (e *Engine) OnBreach(fn func(SLOStatus)) {
	if e == nil || fn == nil {
		return
	}
	e.mu.Lock()
	e.onBreach = append(e.onBreach, fn)
	e.mu.Unlock()
}

// Evaluate re-judges every objective from its histogram's live window,
// updates the exported gauges/counters, and returns the statuses.
func (e *Engine) Evaluate() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	objectives := append([]Objective(nil), e.objectives...)
	callbacks := make([]func(SLOStatus), len(e.onBreach))
	copy(callbacks, e.onBreach)
	e.mu.Unlock()

	statuses := make([]SLOStatus, 0, len(objectives))
	var breached []SLOStatus
	for _, o := range objectives {
		st := e.evaluateOne(o)
		statuses = append(statuses, st)

		state := SLOOK
		switch st.State {
		case SLOWarning.String():
			state = SLOWarning
		case SLOBreach.String():
			state = SLOBreach
		}
		e.stateVec.WithLabelValues(o.Name).Set(float64(state))
		e.burnVec.WithLabelValues(o.Name, "fast").Set(st.FastBurn)
		e.burnVec.WithLabelValues(o.Name, "slow").Set(st.SlowBurn)

		e.mu.Lock()
		prev, known := e.states[o.Name]
		transitioned := !known && state != SLOOK || known && state != prev
		e.states[o.Name] = state
		e.mu.Unlock()
		if transitioned {
			e.transitions.WithLabelValues(o.Name, state.String()).Inc()
			e.logger.Warn("slo state transition",
				"slo", o.Name, "from", prev.String(), "to", state.String(),
				"fastBurn", st.FastBurn, "slowBurn", st.SlowBurn, "p99", st.P99,
				"exemplar", st.ExemplarTrace)
			if state == SLOBreach {
				breached = append(breached, st)
			}
		}
	}
	e.mu.Lock()
	e.last = statuses
	e.evaluated = true
	e.mu.Unlock()
	for _, st := range breached {
		for _, fn := range callbacks {
			fn(st)
		}
	}
	return statuses
}

// evaluateOne judges a single objective.
func (e *Engine) evaluateOne(o Objective) SLOStatus {
	st := SLOStatus{
		Name:          o.Name,
		Metric:        o.Metric,
		TargetSeconds: o.Target.Seconds(),
		GoodRatio:     o.GoodRatio,
		WindowSeconds: o.Window.Seconds(),
		State:         SLOOK.String(),
		GoodFraction:  1,
	}
	h := e.reg.histogramNamed(o.Metric)
	var ring *windowRing
	if h != nil {
		ring = h.win.Load()
	}
	if ring == nil {
		st.Missing = true
		return st
	}
	budget := 1 - o.GoodRatio
	if budget <= 0 {
		budget = 1e-9 // a 100% objective burns infinitely fast on any error
	}
	counts, total, _, slowSpan := ring.view(o.Window)
	target := o.Target.Seconds()
	slowGood := goodFraction(ring.bounds, counts, total, target)
	slowBurn := (1 - slowGood) / budget

	fastSpan := o.Window / 12
	if fastSpan < ring.width {
		fastSpan = ring.width
	}
	fc, ft, _, _ := ring.view(fastSpan)
	fastBurn := (1 - goodFraction(ring.bounds, fc, ft, target)) / budget

	state := SLOOK
	switch {
	case fastBurn >= e.fast && slowBurn >= e.fast:
		state = SLOBreach
	case fastBurn >= e.slow && slowBurn >= e.slow:
		state = SLOWarning
	}
	st.State = state.String()
	st.FastBurn = fastBurn
	st.SlowBurn = slowBurn
	st.GoodFraction = slowGood
	st.Count = total
	st.WindowSeconds = slowSpan.Seconds()
	st.P99 = quantileFromBuckets(ring.bounds, counts, total, 0.99)
	if ex, ok := h.ExemplarNear(st.P99); ok {
		st.ExemplarTrace = ex.TraceID
	}
	return st
}

// Statuses returns the most recently evaluated statuses, evaluating once
// if the engine never ran.
func (e *Engine) Statuses() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.evaluated {
		out := append([]SLOStatus(nil), e.last...)
		e.mu.Unlock()
		return out
	}
	e.mu.Unlock()
	return e.Evaluate()
}

// Run evaluates on a background ticker (default 10s) until the returned
// stop function is called.
func (e *Engine) Run(interval time.Duration) (stop func()) {
	if e == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				e.Evaluate()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// WriteJSON renders {"objectives": [...]} with freshly evaluated statuses
// — the /debug/slo payload.
func (e *Engine) WriteJSON(w io.Writer) error {
	payload := struct {
		Objectives []SLOStatus `json:"objectives"`
	}{e.Evaluate()}
	if payload.Objectives == nil {
		payload.Objectives = []SLOStatus{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// WriteText renders one aligned line per objective.
func (e *Engine) WriteText(w io.Writer) error {
	statuses := e.Evaluate()
	if len(statuses) == 0 {
		_, err := fmt.Fprintln(w, "no objectives configured")
		return err
	}
	for _, st := range statuses {
		if st.Missing {
			if _, err := fmt.Fprintf(w, "%-16s state=%-8s metric %s not collecting\n", st.Name, st.State, st.Metric); err != nil {
				return err
			}
			continue
		}
		_, err := fmt.Fprintf(w, "%-16s state=%-8s burn fast=%.2f slow=%.2f good=%.3f%% p99=%s target=%s window=%s n=%d",
			st.Name, st.State, st.FastBurn, st.SlowBurn, st.GoodFraction*100,
			time.Duration(st.P99*float64(time.Second)).Round(time.Microsecond),
			time.Duration(st.TargetSeconds*float64(time.Second)),
			time.Duration(st.WindowSeconds*float64(time.Second)), st.Count)
		if err != nil {
			return err
		}
		if st.ExemplarTrace != "" {
			if _, err := fmt.Fprintf(w, " exemplar=%s", st.ExemplarTrace); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ParseObjectives parses the -slo flag grammar: objectives separated by
// ';', each a comma-separated list of key=value pairs with keys name,
// metric, target, good and window, e.g.
//
//	name=search,metric=rpc:search,target=250ms,good=0.99,window=2m
//
// good defaults to 0.99 and window to the default ring span (2m). metric
// values are looked up in aliases first, so binaries can map short names
// like "rpc:search" onto their full registered series; unknown metrics
// pass through verbatim (they report Missing until the series appears).
// A spec starting with '@' names a config file holding one objective per
// line, with '#' comments and blank lines ignored.
func ParseObjectives(spec string, aliases map[string]string) ([]Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("obs: slo config: %w", err)
		}
		var parts []string
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			if line = strings.TrimSpace(line); line != "" {
				parts = append(parts, line)
			}
		}
		spec = strings.Join(parts, ";")
	}
	var out []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		o := Objective{GoodRatio: 0.99, Window: time.Duration(DefWindowSubCount) * DefWindowSubWidth}
		for _, kv := range strings.Split(part, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("obs: slo objective %q: expected key=value, got %q", part, kv)
			}
			v = strings.TrimSpace(v)
			var err error
			switch strings.TrimSpace(k) {
			case "name":
				o.Name = v
			case "metric":
				o.Metric = v
			case "target":
				o.Target, err = time.ParseDuration(v)
			case "good":
				o.GoodRatio, err = strconv.ParseFloat(v, 64)
			case "window":
				o.Window, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("obs: slo objective %q: unknown key %q (want name, metric, target, good or window)", part, k)
			}
			if err != nil {
				return nil, fmt.Errorf("obs: slo objective %q: %s: %w", part, k, err)
			}
		}
		if o.Metric == "" {
			return nil, fmt.Errorf("obs: slo objective %q: metric is required", part)
		}
		if o.Target <= 0 {
			return nil, fmt.Errorf("obs: slo objective %q: target must be a positive duration", part)
		}
		if o.GoodRatio <= 0 || o.GoodRatio >= 1 {
			return nil, fmt.Errorf("obs: slo objective %q: good must be in (0, 1)", part)
		}
		if o.Window <= 0 {
			return nil, fmt.Errorf("obs: slo objective %q: window must be positive", part)
		}
		if o.Name == "" {
			o.Name = o.Metric
		}
		if full, ok := aliases[o.Metric]; ok {
			o.Metric = full
		}
		out = append(out, o)
	}
	return out, nil
}
