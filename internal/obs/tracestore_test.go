package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// stored fabricates a finalized trace with a crafted duration, feeding the
// clock-free record() hook directly so tests control latency exactly.
func stored(name string, d time.Duration) StoredTrace {
	return StoredTrace{ID: NewTraceID(), Name: name, DurationNs: d}
}

// TestTraceStoreSlowestExact inserts traces with distinct durations from
// many goroutines and checks Slowest() is EXACTLY the top-N by duration,
// sorted slowest first — not merely "some slow traces". The replace-the-
// fastest retention policy must converge to the true top-N regardless of
// insertion order or interleaving.
func TestTraceStoreSlowestExact(t *testing.T) {
	s := NewTraceStore(32) // slowCap = 4
	const workers, perWorker = 8, 50

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Distinct duration per trace: worker*perWorker+i+1 ms.
				d := time.Duration(w*perWorker+i+1) * time.Millisecond
				s.record(stored(fmt.Sprintf("w%d-%d", w, i), d))
			}
		}(w)
	}
	wg.Wait()

	if got := s.Seen(); got != workers*perWorker {
		t.Fatalf("Seen = %d, want %d", got, workers*perWorker)
	}
	slowest := s.Slowest()
	if len(slowest) != 4 {
		t.Fatalf("slowest table holds %d, want 4", len(slowest))
	}
	// The global top-4 durations are 400, 399, 398, 397 ms.
	for i, want := range []time.Duration{400, 399, 398, 397} {
		if slowest[i].DurationNs != want*time.Millisecond {
			t.Errorf("slowest[%d] = %v, want %v", i, slowest[i].DurationNs, want*time.Millisecond)
		}
	}
	// Every retained outlier is reachable by ID even though the ring has
	// long since evicted it.
	for _, st := range slowest {
		if _, ok := s.Get(st.ID); !ok {
			t.Errorf("outlier %s (%v) not found by ID", st.Name, st.DurationNs)
		}
	}
}

// TestTraceStoreSlowestEviction pins the replacement policy: when the
// table is full, a new trace evicts the FASTEST retained one — and only
// when the newcomer is slower than it.
func TestTraceStoreSlowestEviction(t *testing.T) {
	s := NewTraceStore(32) // slowCap = 4
	for _, ms := range []int{100, 400, 200, 300} {
		s.record(stored(fmt.Sprintf("t%d", ms), time.Duration(ms)*time.Millisecond))
	}

	// A newcomer slower than the fastest (100ms) replaces exactly it.
	s.record(stored("t250", 250*time.Millisecond))
	want := []string{"t400", "t300", "t250", "t200"}
	got := s.Slowest()
	if len(got) != len(want) {
		t.Fatalf("slowest = %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Errorf("slowest[%d] = %s, want %s (full: %v)", i, got[i].Name, want[i], names(got))
		}
	}

	// A newcomer faster than everything retained changes nothing.
	s.record(stored("t1", time.Millisecond))
	if got := s.Slowest(); len(got) != 4 || got[3].Name != "t200" {
		t.Errorf("fast trace displaced an outlier: %v", names(got))
	}

	// Ties: a newcomer equal to the current fastest does not displace it
	// (strict < comparison), so the table is stable under equal loads.
	s.record(stored("t200b", 200*time.Millisecond))
	if got := s.Slowest(); got[3].Name != "t200" {
		t.Errorf("equal-duration trace displaced the incumbent: %v", names(got))
	}

	// Seen counts every offer, displaced or not.
	if s.Seen() != 7 {
		t.Errorf("Seen = %d, want 7", s.Seen())
	}
}

// TestTraceStoreSlowestSurvivesResize checks SetCapacity truncates the
// slowest table to the new bound without losing the slowest entries'
// relative order guarantee on the next insert.
func TestTraceStoreSlowestSurvivesResize(t *testing.T) {
	s := NewTraceStore(64) // slowCap = 8
	for i := 1; i <= 8; i++ {
		s.record(stored(fmt.Sprintf("t%d", i), time.Duration(i)*time.Second))
	}
	s.SetCapacity(32) // slowCap shrinks to 4
	if got := len(s.Slowest()); got > 4 {
		t.Fatalf("resized slowest table holds %d, want <= 4", got)
	}
	// Inserting a clear outlier after the resize still lands in the table.
	s.record(stored("huge", time.Minute))
	if got := s.Slowest(); got[0].Name != "huge" {
		t.Errorf("post-resize outlier missing: %v", names(got))
	}
}

func names(sts []StoredTrace) []string {
	out := make([]string, len(sts))
	for i := range sts {
		out[i] = sts[i].Name
	}
	return out
}
