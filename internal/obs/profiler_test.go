package obs

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readCaptureDirs lists capture bundles under dir in lexicographic
// (= capture) order.
func readCaptureDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "capture-") {
			out = append(out, ent.Name())
		}
	}
	return out
}

// TestProfilerCaptureBundle checks one capture end to end: bundle layout,
// valid gzip framing on every profile, and a meta.json that indexes
// exactly the files present.
func TestProfilerCaptureBundle(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	p, err := NewProfiler(ProfilerOptions{
		Dir:         dir,
		CPUDuration: 50 * time.Millisecond,
		MinInterval: -1,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := p.CaptureNow("slo-search")
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	if got := filepath.Base(bundle); got != "capture-000001-slo-search" {
		t.Errorf("bundle name = %q", got)
	}

	metaRaw, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	var meta struct {
		Seq      int      `json:"seq"`
		Reason   string   `json:"reason"`
		Files    []string `json:"files"`
		CPUError string   `json:"cpuError"`
	}
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		t.Fatalf("meta.json invalid: %v\n%s", err, metaRaw)
	}
	if meta.Seq != 1 || meta.Reason != "slo-search" {
		t.Errorf("meta = %+v", meta)
	}
	for _, name := range meta.Files {
		f, err := os.Open(filepath.Join(bundle, name))
		if err != nil {
			t.Errorf("indexed file missing: %v", err)
			continue
		}
		gz, err := gzip.NewReader(f)
		if err != nil {
			t.Errorf("%s: not gzip: %v", name, err)
			f.Close()
			continue
		}
		// A capture interrupted by SIGKILL would leave a torn gzip stream;
		// a completed one must decompress to the end.
		if _, err := io.Copy(io.Discard, gz); err != nil {
			t.Errorf("%s: torn gzip stream: %v", name, err)
		}
		gz.Close()
		f.Close()
	}
	wantGoroutine := false
	for _, name := range meta.Files {
		if name == "goroutine.txt.gz" {
			wantGoroutine = true
		}
	}
	if !wantGoroutine {
		t.Errorf("goroutine dump not indexed: %v", meta.Files)
	}
	if meta.CPUError == "" {
		found := false
		for _, name := range meta.Files {
			if name == "cpu.pprof.gz" {
				found = true
			}
		}
		if !found {
			t.Errorf("no CPU profile and no recorded CPU error: %v", meta.Files)
		}
	}

	snap := reg.Snapshot()
	if got := snap[VecName("slicer_obs_profile_captures_total", "reason", "slo-search")]; got != 1 {
		t.Errorf("capture counter = %v, want 1", got)
	}
}

// TestProfilerRetention checks the bounded ring: with max 2, a third
// capture evicts the oldest bundle.
func TestProfilerRetention(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerOptions{
		Dir:         dir,
		MaxCaptures: 2,
		CPUDuration: time.Millisecond,
		MinInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.CaptureNow("load"); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	got := readCaptureDirs(t, dir)
	if len(got) != 2 || got[0] != "capture-000002-load" || got[1] != "capture-000003-load" {
		t.Errorf("retained = %v, want captures 2 and 3", got)
	}
}

// TestProfilerRateLimit checks the injectable-clock rate limiter and the
// skip counter.
func TestProfilerRateLimit(t *testing.T) {
	clk := newFakeClock(time.Unix(5000, 0))
	reg := NewRegistry()
	p, err := NewProfiler(ProfilerOptions{
		Dir:         t.TempDir(),
		CPUDuration: time.Millisecond,
		MinInterval: 30 * time.Second,
		Registry:    reg,
		Clock:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureNow("first"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureNow("second"); !errors.Is(err, ErrCaptureRateLimited) {
		t.Fatalf("second capture = %v, want rate-limited", err)
	}
	clk.Advance(31 * time.Second)
	if _, err := p.CaptureNow("third"); err != nil {
		t.Fatalf("post-gap capture = %v", err)
	}
	if got := reg.Snapshot()["slicer_obs_profile_captures_skipped_total"]; got != 1 {
		t.Errorf("skip counter = %v, want 1", got)
	}
}

// TestProfilerSeqRecovery checks a restarted profiler continues the
// sequence past bundles already on disk instead of overwriting them.
func TestProfilerSeqRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := ProfilerOptions{Dir: dir, CPUDuration: time.Millisecond, MinInterval: -1}
	p1, err := NewProfiler(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.CaptureNow("before-restart"); err != nil {
		t.Fatal(err)
	}
	p2, err := NewProfiler(opts)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := p2.CaptureNow("after-restart")
	if err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(bundle); got != "capture-000002-after-restart" {
		t.Errorf("recovered sequence bundle = %q, want capture-000002-after-restart", got)
	}
}

// TestProfilerReasonSanitized checks hostile trigger reasons cannot
// escape the capture directory or produce unusable names.
func TestProfilerReasonSanitized(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerOptions{Dir: dir, CPUDuration: time.Millisecond, MinInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := p.CaptureNow("../../etc/PASSWD !!")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(dir, bundle)
	if err != nil || strings.HasPrefix(rel, "..") {
		t.Fatalf("capture escaped its root: %q", bundle)
	}
	if name := filepath.Base(bundle); strings.ContainsAny(name, "/\\ !") {
		t.Errorf("unsafe bundle name %q", name)
	}
}
