package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact Prometheus text format for a small
// registry: HELP/TYPE lines once per family, deterministic ordering,
// labeled series, cumulative histogram buckets with sum/count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "Things counted.").Add(3)
	r.Counter(`b_total{op="eq"}`, "Labeled things.").Add(1)
	r.Counter(`b_total{op="lt"}`, "").Add(2)
	r.Gauge("c_current", "A level.").Set(2.5)
	h := r.HistogramBuckets("d_seconds", "A latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	// A windowed histogram with a pinned clock: the cumulative series keeps
	// its exact shape and four quantile gauges appear under e_seconds_window.
	// With buckets {0.1, 1} and observations {0.05, 0.05, 0.5, 5}: p50
	// interpolates to the first bound (target 2 = the bucket's count) and
	// the higher quantiles land in +Inf, reporting the last finite bound.
	now := time.Unix(1700000000, 0)
	e := r.WindowedHistogramOpts("e_seconds", "A windowed latency.", []float64{0.1, 1},
		WindowOptions{Clock: func() time.Time { return now }})
	e.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	e.Observe(0.05)
	e.Observe(0.5)
	e.Observe(5)

	// Vector children render their labels in sorted key order regardless of
	// declaration order.
	fv := r.CounterVec("f_total", "Vector things.", []string{"op", "kind"})
	fv.WithLabelValues("eq", "warm").Add(4)
	fv.WithLabelValues("lt", "cold").Add(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP a_total Things counted.
# TYPE a_total counter
a_total 3
# HELP b_total Labeled things.
# TYPE b_total counter
b_total{op="eq"} 1
b_total{op="lt"} 2
# HELP c_current A level.
# TYPE c_current gauge
c_current 2.5
# HELP d_seconds A latency.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 2
d_seconds_bucket{le="1"} 3
d_seconds_bucket{le="+Inf"} 4
d_seconds_sum 5.6
d_seconds_count 4
# HELP e_seconds A windowed latency.
# TYPE e_seconds histogram
e_seconds_bucket{le="0.1"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05
e_seconds_bucket{le="1"} 3
e_seconds_bucket{le="+Inf"} 4
e_seconds_sum 5.6
e_seconds_count 4
# HELP e_seconds_window Sliding-window quantile estimate of e_seconds (bucket-interpolated).
# TYPE e_seconds_window gauge
e_seconds_window{quantile="p50"} 0.1
e_seconds_window{quantile="p90"} 1
e_seconds_window{quantile="p99"} 1
e_seconds_window{quantile="p999"} 1
# HELP f_total Vector things.
# TYPE f_total counter
f_total{kind="cold",op="lt"} 5
f_total{kind="warm",op="eq"} 4
# HELP slicer_obs_label_overflow_total Label-set lookups redirected to the sentinel other child because a vector hit its cardinality cap.
# TYPE slicer_obs_label_overflow_total counter
slicer_obs_label_overflow_total{family="f_total"} 0
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.HistogramBuckets("d_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if parsed["a_total"].(float64) != 7 {
		t.Errorf("a_total = %v, want 7", parsed["a_total"])
	}
	hist := parsed["d_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 0.5 {
		t.Errorf("histogram JSON = %v", hist)
	}
}

// TestHistogramBucketBoundaries checks le semantics: a value equal to a
// bucket's upper bound lands in that bucket, values beyond every bound
// land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.1, 1, 10, 10.0001, 0.0999} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{0.1, 1, 10, math.Inf(1)}
	wantCum := []uint64{2, 3, 4, 5} // 0.0999+0.1 <= 0.1; +1 <= 1; +10 <= 10; +Inf gets all
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Errorf("bounds[%d] = %v, want %v", i, bounds[i], wantBounds[i])
		}
		if cum[i] != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestDefaultBucketsSorted(t *testing.T) {
	for i := 1; i < len(DefLatencyBuckets); i++ {
		if DefLatencyBuckets[i] <= DefLatencyBuckets[i-1] {
			t.Fatalf("DefLatencyBuckets not strictly increasing at %d: %v", i, DefLatencyBuckets)
		}
	}
}

// TestNilSafety drives every instrument and export path through nil
// receivers — the zero-cost-when-disabled contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "")
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Dec()
	h.Observe(1)
	h.ObserveSince(h.Start())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments accumulated values")
	}
	if !h.Start().IsZero() {
		t.Error("nil histogram Start read the clock")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if r.Snapshot() != nil {
		t.Error("nil Snapshot not nil")
	}

	var tr *Trace
	tr.Span("p")()
	StartPhase(nil, nil, "p")()
	if tr.Spans() != nil || tr.Elapsed() != 0 {
		t.Error("nil trace recorded spans")
	}
	if err := tr.WriteText(&bytes.Buffer{}); err != nil {
		t.Errorf("nil trace WriteText: %v", err)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "")
	h := r.Histogram("b_seconds", "")
	c.Add(2)
	h.Observe(0.25)
	before := r.Snapshot()
	c.Add(3)
	h.Observe(0.75)
	d := Delta(before, r.Snapshot())
	if d["a_total"] != 3 {
		t.Errorf("delta a_total = %v, want 3", d["a_total"])
	}
	if d["b_seconds/count"] != 1 || math.Abs(d["b_seconds/sum"]-0.75) > 1e-12 {
		t.Errorf("histogram delta = %v", d)
	}
	if len(Delta(r.Snapshot(), r.Snapshot())) != 0 {
		t.Error("idempotent snapshot produced a non-empty delta")
	}
}

func TestRegisterKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a histogram did not panic")
		}
	}()
	r.Histogram("m", "")
}

// TestConcurrentUpdatesAndScrapes is the -race stress test: many writers
// hammer one counter, one labeled counter family, a gauge and a histogram
// while scrapers render both export formats.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 2000
	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sink bytes.Buffer
				_ = r.WritePrometheus(&sink)
				_ = r.WriteJSON(&sink)
				r.Snapshot()
			}
		}()
	}
	for wkr := 0; wkr < writers; wkr++ {
		writeWG.Add(1)
		go func(wkr int) {
			defer writeWG.Done()
			c := r.Counter("stress_total", "")
			lc := r.Counter(Label("stress_by_worker_total", "w", fmt.Sprint(wkr%4)), "")
			g := r.Gauge("stress_level", "")
			h := r.Histogram("stress_seconds", "")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				lc.Inc()
				g.Add(1)
				h.Observe(float64(i%7) / 100)
			}
		}(wkr)
	}
	writeWG.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := r.Counter("stress_total", "").Value(); got != writers*perWriter {
		t.Errorf("stress_total = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("stress_seconds", "").Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	var total uint64
	for w := 0; w < 4; w++ {
		total += r.Counter(Label("stress_by_worker_total", "w", fmt.Sprint(w)), "").Value()
	}
	if total != writers*perWriter {
		t.Errorf("labeled family total = %d, want %d", total, writers*perWriter)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	if !strings.Contains(buf.String(), "stress_seconds_count") {
		t.Error("final scrape missing histogram count")
	}
}
