package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestVecChildIdentity checks that a (family, label values) pair always
// resolves to the same child, shared with direct registry lookups.
func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", []string{"method", "outcome"})
	a := v.WithLabelValues("search", "ok")
	b := v.WithLabelValues("search", "ok")
	if a != b {
		t.Error("same label values resolved to different children")
	}
	a.Add(2)
	// The child is a plain registry metric under its sorted full name.
	direct := r.Counter(VecName("req_total", "method", "search", "outcome", "ok"), "")
	if direct.Value() != 2 {
		t.Errorf("direct lookup = %v, want 2", direct.Value())
	}
	if other := v.WithLabelValues("search", "error"); other == a {
		t.Error("different outcomes share a child")
	}
}

// TestVecCardinalityCap checks the overflow behavior: past the cap every
// new label set lands on the all-"other" sentinel and each redirected
// lookup increments the overflow counter.
func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVecOpts("tenant_total", "", []string{"tenant"}, VecOpts{MaxCardinality: 2})
	v.WithLabelValues("a").Inc()
	v.WithLabelValues("b").Inc()
	v.WithLabelValues("c").Inc() // overflow 1
	v.WithLabelValues("d").Inc() // overflow 2
	v.WithLabelValues("a").Inc() // existing child: no overflow

	snap := r.Snapshot()
	if got := snap[VecName("tenant_total", "tenant", "a")]; got != 2 {
		t.Errorf("tenant a = %v, want 2", got)
	}
	if got := snap[VecName("tenant_total", "tenant", OverflowLabelValue)]; got != 2 {
		t.Errorf("sentinel = %v, want 2", got)
	}
	if got := snap[Label(OverflowCounterName, "family", "tenant_total")]; got != 2 {
		t.Errorf("overflow counter = %v, want 2", got)
	}
	// The sentinel child is not counted against the cap: "a" and "b" keep
	// their dedicated series.
	if got := snap[VecName("tenant_total", "tenant", "b")]; got != 1 {
		t.Errorf("tenant b = %v, want 1", got)
	}
}

// TestVecLabelSanitization checks hostile label values cannot break the
// exposition format or explode series length.
func TestVecLabelSanitization(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("evil_total", "", []string{"tenant"})
	v.WithLabelValues("x\"y{z},=\n").Inc()
	v.WithLabelValues(strings.Repeat("A", 500)).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if strings.Count(line, `"`)%2 != 0 {
			t.Errorf("unbalanced quotes in exposition line %q", line)
		}
		if len(line) > 200 {
			t.Errorf("series name not truncated: %d bytes", len(line))
		}
	}
	if strings.Contains(sb.String(), "\n\n") {
		t.Error("control bytes leaked into the exposition")
	}
}

// TestVecPanics pins the programmer-error contracts: wrong arity, label
// key conflicts and kind conflicts panic immediately.
func TestVecPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("p_total", "", []string{"a", "b"})
	mustPanic(t, "arity", func() { v.WithLabelValues("only-one") })
	mustPanic(t, "label keys", func() { r.CounterVec("p_total", "", []string{"other"}) })
	mustPanic(t, "kind", func() { r.GaugeVec("p_total", "", []string{"a", "b"}) })
}

// TestVecConcurrency hammers one vector from many goroutines; run under
// -race this pins the lock discipline of the child map and sentinel path.
func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVecOpts("c_total", "", []string{"k"}, VecOpts{MaxCardinality: 4})
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.WithLabelValues(keys[(g+i)%len(keys)]).Inc()
			}
		}(g)
	}
	wg.Wait()
	var total float64
	for name, val := range r.Snapshot() {
		if strings.HasPrefix(name, "c_total{") {
			total += val
		}
	}
	if total != 8000 {
		t.Errorf("total across children = %v, want 8000 (no lost increments)", total)
	}
}

// TestHistogramVecWindowed checks that HistogramVec children created with
// a Window option each get their own ring and quantile gauges.
func TestHistogramVecWindowed(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVecOpts("phase_seconds", "", []string{"phase"},
		VecOpts{Window: &WindowOptions{}})
	hv.WithLabelValues("collect").Observe(0.01)
	hv.WithLabelValues("witness").Observe(0.5)

	snap := r.Snapshot()
	collectP99 := `phase_seconds_window{phase="collect",quantile="p99"}`
	witnessP99 := `phase_seconds_window{phase="witness",quantile="p99"}`
	if snap[collectP99] <= 0 || snap[witnessP99] <= 0 {
		t.Fatalf("windowed gauges missing: collect=%v witness=%v", snap[collectP99], snap[witnessP99])
	}
	if snap[collectP99] >= snap[witnessP99] {
		t.Errorf("rings are shared: collect p99 %v >= witness p99 %v", snap[collectP99], snap[witnessP99])
	}
}

// TestExemplarNear checks exemplar retention and nearest-bucket lookup.
func TestExemplarNear(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("x_seconds", "", []float64{0.1, 1, 10})
	if _, ok := h.ExemplarNear(0.5); ok {
		t.Fatal("empty histogram returned an exemplar")
	}
	h.ObserveExemplar(0.05, "trace-fast")
	h.ObserveExemplar(5, "trace-slow")
	h.Observe(0.5) // no trace: leaves no exemplar

	if ex, ok := h.ExemplarNear(0.05); !ok || ex.TraceID != "trace-fast" {
		t.Errorf("exact bucket = %+v, %v", ex, ok)
	}
	// The middle bucket (0.1, 1] has no exemplar; lookup fans outward and
	// prefers the slower neighbor at equal distance.
	if ex, ok := h.ExemplarNear(0.5); !ok || ex.TraceID != "trace-slow" {
		t.Errorf("fan-out = %+v, %v", ex, ok)
	}
	// A newer exemplar in the same bucket replaces the old one.
	h.ObserveExemplar(0.06, "trace-fast-2")
	if ex, _ := h.ExemplarNear(0.05); ex.TraceID != "trace-fast-2" {
		t.Errorf("exemplar not replaced: %+v", ex)
	}
	// Nil safety.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "t")
	if _, ok := nilH.ExemplarNear(1); ok {
		t.Error("nil histogram returned an exemplar")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
