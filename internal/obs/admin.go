package obs

import (
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Admin is the opt-in operational HTTP server the long-running binaries
// expose behind -admin: Prometheus metrics, a liveness probe, expvar, the
// trace store, and the full net/http/pprof surface.
//
//	GET  /metrics                 Prometheus text exposition (add ?format=json for JSON)
//	GET  /healthz                 "ok" + uptime
//	GET  /debug/traces            retained traces as JSON; ?id=<traceId> renders one as text
//	GET  /debug/slo               SLO statuses as JSON; ?format=text for an aligned render
//	GET  /debug/audit             recent audit records as JSON; ?id=<seq> renders one with evidence
//	POST /debug/profile/capture   synchronous on-demand profile capture (GET works too)
//	GET  /debug/vars              expvar JSON
//	GET  /debug/pprof/...         pprof index, profiles, symbol, trace
type Admin struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// AdminOptions wires optional subsystems into the admin endpoint. Every
// field but Registry may be nil; the corresponding endpoints then serve
// explicit "not configured" payloads instead of 404ing, so probes stay
// stable across deployments.
type AdminOptions struct {
	Registry *Registry
	Traces   *TraceStore
	Logger   *slog.Logger
	SLO      *Engine
	Profiler *Profiler
	// Audit serves /debug/audit (typically audit.(*Ledger).AdminHandler);
	// nil serves an explicit "not configured" payload.
	Audit http.Handler
}

// StartAdmin binds addr (":0" picks a free port) and serves the admin
// endpoints for reg in a background goroutine. traces may be nil (the
// /debug/traces endpoint then reports an empty store); logger may be nil.
func StartAdmin(addr string, reg *Registry, traces *TraceStore, logger *slog.Logger) (*Admin, error) {
	return StartAdminOpts(addr, AdminOptions{Registry: reg, Traces: traces, Logger: logger})
}

// StartAdminOpts is StartAdmin plus the SLO and profiler surfaces.
func StartAdminOpts(addr string, opts AdminOptions) (*Admin, error) {
	reg, traces, logger := opts.Registry, opts.Traces, opts.Logger
	if logger == nil {
		logger = Nop()
	}
	a := &Admin{started: time.Now()}

	// Process-level gauges ride along on the shared registry so every
	// scrape sees runtime health next to the protocol metrics.
	reg.GaugeFunc("slicer_process_uptime_seconds",
		"Seconds since the admin endpoint started.",
		func() float64 { return time.Since(a.started).Seconds() })
	reg.GaugeFunc("slicer_process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("slicer_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", time.Since(a.started).Round(time.Millisecond))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			st, ok := traces.Get(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = st.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if traces == nil {
			fmt.Fprintln(w, `{"seen":0,"sampling":1,"recent":[],"slowest":[]}`)
			return
		}
		_ = traces.WriteJSON(w)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		if opts.SLO == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"objectives":[]}`)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = opts.SLO.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = opts.SLO.WriteJSON(w)
	})
	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, r *http.Request) {
		if opts.Audit == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"headSeq":0,"records":[],"note":"auditing not configured (start the server with -audit-dir)"}`)
			return
		}
		opts.Audit.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/profile/capture", func(w http.ResponseWriter, r *http.Request) {
		if opts.Profiler == nil {
			http.Error(w, "profiler not configured (start the server with -data-dir)", http.StatusNotFound)
			return
		}
		dir, err := opts.Profiler.CaptureNow("manual")
		if err != nil {
			status := http.StatusInternalServerError
			if err == ErrCaptureInFlight || err == ErrCaptureRateLimited {
				status = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"dir\": %q}\n", dir)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := a.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("admin server exited", "err", err)
		}
	}()
	logger.Info("admin endpoint serving", "addr", ln.Addr().String())
	return a, nil
}

// Addr reports the bound address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server immediately.
func (a *Admin) Close() error { return a.srv.Close() }
