package obs

import (
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Admin is the opt-in operational HTTP server the long-running binaries
// expose behind -admin: Prometheus metrics, a liveness probe, expvar, the
// trace store, and the full net/http/pprof surface.
//
//	GET /metrics              Prometheus text exposition (add ?format=json for JSON)
//	GET /healthz              "ok" + uptime
//	GET /debug/traces         retained traces as JSON; ?id=<traceId> renders one as text
//	GET /debug/vars           expvar JSON
//	GET /debug/pprof/...      pprof index, profiles, symbol, trace
type Admin struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// StartAdmin binds addr (":0" picks a free port) and serves the admin
// endpoints for reg in a background goroutine. traces may be nil (the
// /debug/traces endpoint then reports an empty store); logger may be nil.
func StartAdmin(addr string, reg *Registry, traces *TraceStore, logger *slog.Logger) (*Admin, error) {
	if logger == nil {
		logger = Nop()
	}
	a := &Admin{started: time.Now()}

	// Process-level gauges ride along on the shared registry so every
	// scrape sees runtime health next to the protocol metrics.
	reg.GaugeFunc("slicer_process_uptime_seconds",
		"Seconds since the admin endpoint started.",
		func() float64 { return time.Since(a.started).Seconds() })
	reg.GaugeFunc("slicer_process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("slicer_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", time.Since(a.started).Round(time.Millisecond))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			st, ok := traces.Get(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = st.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if traces == nil {
			fmt.Fprintln(w, `{"seen":0,"sampling":1,"recent":[],"slowest":[]}`)
			return
		}
		_ = traces.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := a.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("admin server exited", "err", err)
		}
	}()
	logger.Info("admin endpoint serving", "addr", ln.Addr().String())
	return a, nil
}

// Addr reports the bound address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server immediately.
func (a *Admin) Close() error { return a.srv.Close() }
