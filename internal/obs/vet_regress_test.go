package obs

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverObs runs the flow-sensitive analyzers as a library over
// this package, mirroring the contract package's constant-time gate. The
// observability layer exports everything it touches — metric label
// values, trace attributes, profile files — so secrettaint keeps key
// material out of the exported surface, and lockdiscipline covers the
// registry and trace stores the collectors hit concurrently.
func TestVetGatesOverObs(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/obs")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/obs")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.SecretTaint,
		analysis.LockDiscipline,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in obs: %s", d)
	}
}
