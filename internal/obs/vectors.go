package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefLabelCap bounds the number of distinct label-value combinations a
// vector materializes before redirecting new combinations to the sentinel
// "other" child. Bounded cardinality is what keeps attacker- or
// tenant-controlled label values (tenant IDs, method names from hostile
// clients) from growing the registry without bound.
const DefLabelCap = 64

// labelValueMaxLen truncates label values on their way into a series name.
const labelValueMaxLen = 64

// OverflowCounterName counts label-set lookups redirected to the sentinel
// child, labeled by the overflowing vector's family.
const OverflowCounterName = "slicer_obs_label_overflow_total"

// OverflowLabelValue is the sentinel label value overflowing children
// collapse into.
const OverflowLabelValue = "other"

// VecOpts tunes a labeled vector.
type VecOpts struct {
	// MaxCardinality caps distinct children (default DefLabelCap).
	MaxCardinality int
	// Window, when non-nil, makes histogram children sliding-window
	// histograms with this shape (see WindowedHistogramOpts).
	Window *WindowOptions
	// Buckets sets histogram children bounds (default DefLatencyBuckets).
	Buckets []float64
}

// SanitizeLabelValue makes an arbitrary (possibly hostile) string safe to
// embed in a series name: bytes that would break the exposition grammar
// (quotes, backslashes, braces, separators, control bytes) become '_' and
// the value is truncated to labelValueMaxLen.
func SanitizeLabelValue(s string) string {
	if len(s) > labelValueMaxLen {
		s = s[:labelValueMaxLen]
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if labelValueBad(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	b := []byte(s)
	for i := range b {
		if labelValueBad(b[i]) {
			b[i] = '_'
		}
	}
	return string(b)
}

func labelValueBad(c byte) bool {
	return c < 0x20 || c == 0x7f || c == '"' || c == '\\' || c == ',' || c == '=' || c == '{' || c == '}'
}

// renderPairs renders k1="v1",k2="v2" from a flat kv slice, sorted by key.
func renderPairs(kv []string) string {
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var b strings.Builder
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// VecName renders the canonical child name for a labeled family: label
// pairs sorted by label name, so exposition order is deterministic no
// matter the declaration order. VecName("x_total", "op", "eq", "a", "b")
// == `x_total{a="b",op="eq"}`.
func VecName(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	return family + "{" + renderPairs(kv) + "}"
}

// parseLabelPairs scans a rendered label block (`k="v",k2="v2"`, values
// %q-escaped) back into a flat kv slice. ok is false on any syntax it
// did not itself produce.
func parseLabelPairs(labels string) (kv []string, ok bool) {
	s := labels
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		key := s[:eq]
		rest := s[eq+1:]
		i := 1
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(rest) {
			return nil, false
		}
		val, err := strconv.Unquote(rest[:i+1])
		if err != nil {
			return nil, false
		}
		kv = append(kv, key, val)
		s = rest[i+1:]
		if s != "" {
			if s[0] != ',' || len(s) == 1 {
				return nil, false
			}
			s = s[1:]
		}
	}
	return kv, true
}

// mergeLabelPairs re-renders a label block with one extra pair spliced in,
// keeping the whole block sorted by label name. Unparseable blocks (never
// produced by this package) fall back to appending.
func mergeLabelPairs(labels, key, value string) string {
	if labels == "" {
		return renderPairs([]string{key, value})
	}
	kv, ok := parseLabelPairs(labels)
	if !ok {
		return labels + "," + renderPairs([]string{key, value})
	}
	return renderPairs(append(kv, key, value))
}

// vecChild is one materialized label combination.
type vecChild struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// vec is the kind-agnostic core of CounterVec/GaugeVec/HistogramVec: a
// bounded map from label values to registered children. Children register
// under VecName(family, ...) so exposition stays deterministic.
type vec struct {
	reg      *Registry
	family   string
	help     string
	kind     metricKind
	keys     []string
	max      int
	window   *WindowOptions
	buckets  []float64
	overflow *Counter

	mu       sync.RWMutex
	children map[string]*vecChild
	other    *vecChild
}

// vecFor looks up or creates the vector for family, enforcing kind and
// label-key consistency across call sites.
func (r *Registry) vecFor(family, help string, kind metricKind, keys []string, opts VecOpts) *vec {
	r.mu.Lock()
	if v, ok := r.vecs[family]; ok {
		if v.kind != kind {
			r.mu.Unlock()
			panic(fmt.Sprintf("obs: vector %q re-registered as %s (was %s)", family, kind, v.kind))
		}
		if len(v.keys) != len(keys) || !equalStrings(v.keys, keys) {
			r.mu.Unlock()
			panic(fmt.Sprintf("obs: vector %q re-registered with labels %v (was %v)", family, keys, v.keys))
		}
		r.mu.Unlock()
		return v
	}
	max := opts.MaxCardinality
	if max <= 0 {
		max = DefLabelCap
	}
	buckets := opts.Buckets
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	v := &vec{
		reg:      r,
		family:   family,
		help:     help,
		kind:     kind,
		keys:     append([]string(nil), keys...),
		max:      max,
		window:   opts.Window,
		buckets:  buckets,
		children: make(map[string]*vecChild),
	}
	r.vecs[family] = v
	r.mu.Unlock()
	v.overflow = r.Counter(Label(OverflowCounterName, "family", family),
		"Label-set lookups redirected to the sentinel other child because a vector hit its cardinality cap.")
	return v
}

func equalStrings(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// with resolves (creating if under the cap) the child for values. Each
// lookup that lands on the sentinel child also counts one overflow.
func (v *vec) with(values []string) *vecChild {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: vector %q got %d label values for %d labels", v.family, len(values), len(v.keys)))
	}
	for i, val := range values {
		values[i] = SanitizeLabelValue(val)
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[key]; c != nil {
		return c
	}
	if len(v.children) >= v.max {
		v.overflow.Inc()
		if v.other == nil {
			sentinel := make([]string, len(v.keys))
			for i := range sentinel {
				sentinel[i] = OverflowLabelValue
			}
			v.other = v.newChild(sentinel)
		}
		return v.other
	}
	c = v.newChild(values)
	v.children[key] = c
	return c
}

// newChild registers one child under its canonical sorted-label name.
func (v *vec) newChild(values []string) *vecChild {
	kv := make([]string, 0, len(v.keys)*2)
	for i, k := range v.keys {
		kv = append(kv, k, values[i])
	}
	name := VecName(v.family, kv...)
	c := &vecChild{}
	switch v.kind {
	case kindCounter:
		c.counter = v.reg.Counter(name, v.help)
	case kindGauge:
		c.gauge = v.reg.Gauge(name, v.help)
	case kindHistogram:
		if v.window != nil {
			c.hist = v.reg.WindowedHistogramOpts(name, v.help, v.buckets, *v.window)
		} else {
			c.hist = v.reg.HistogramBuckets(name, v.help, v.buckets)
		}
	}
	return c
}

// CounterVec is a family of counters split by label values.
type CounterVec struct{ v *vec }

// CounterVec returns the labeled counter family under name, creating it on
// first use. Nil-safe like every registry method.
func (r *Registry) CounterVec(name, help string, labels []string) *CounterVec {
	return r.CounterVecOpts(name, help, labels, VecOpts{})
}

// CounterVecOpts is CounterVec with explicit vector options.
func (r *Registry) CounterVecOpts(name, help string, labels []string, opts VecOpts) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.vecFor(name, help, kindCounter, labels, opts)}
}

// WithLabelValues resolves the child counter for the given label values
// (declaration order). Nil-safe: a nil vector yields a nil counter.
func (c *CounterVec) WithLabelValues(values ...string) *Counter {
	if c == nil || c.v == nil {
		return nil
	}
	return c.v.with(values).counter
}

// GaugeVec is a family of gauges split by label values.
type GaugeVec struct{ v *vec }

// GaugeVec returns the labeled gauge family under name.
func (r *Registry) GaugeVec(name, help string, labels []string) *GaugeVec {
	return r.GaugeVecOpts(name, help, labels, VecOpts{})
}

// GaugeVecOpts is GaugeVec with explicit vector options.
func (r *Registry) GaugeVecOpts(name, help string, labels []string, opts VecOpts) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.vecFor(name, help, kindGauge, labels, opts)}
}

// WithLabelValues resolves the child gauge for the given label values.
func (g *GaugeVec) WithLabelValues(values ...string) *Gauge {
	if g == nil || g.v == nil {
		return nil
	}
	return g.v.with(values).gauge
}

// HistogramVec is a family of histograms split by label values.
type HistogramVec struct{ v *vec }

// HistogramVec returns the labeled histogram family under name with the
// default latency buckets.
func (r *Registry) HistogramVec(name, help string, labels []string) *HistogramVec {
	return r.HistogramVecOpts(name, help, labels, VecOpts{})
}

// HistogramVecOpts is HistogramVec with explicit vector options; set
// opts.Window to make every child a sliding-window histogram.
func (r *Registry) HistogramVecOpts(name, help string, labels []string, opts VecOpts) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r.vecFor(name, help, kindHistogram, labels, opts)}
}

// WithLabelValues resolves the child histogram for the given label values.
func (h *HistogramVec) WithLabelValues(values ...string) *Histogram {
	if h == nil || h.v == nil {
		return nil
	}
	return h.v.with(values).hist
}
