package obs

import "sort"

// Exemplar links one observed value to the trace that produced it. Each
// histogram bucket retains the most recent exemplar that landed in it —
// a single atomic pointer store per traced observation, so the hot path
// stays lock-free. Exemplars are naturally sampled: only observations
// carrying a trace ID (i.e. requests the trace sampler picked) store one.
type Exemplar struct {
	TraceID string  `json:"traceId"`
	Value   float64 `json:"value"`
}

// ObserveExemplar records v like Observe and, when traceID is non-empty,
// retains {traceID, v} as the bucket's exemplar. No-op on a nil histogram.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exemplars[sort.SearchFloat64s(h.bounds, v)].Store(&Exemplar{TraceID: traceID, Value: v})
}

// bucketExemplar reads bucket i's exemplar (nil when none stored).
func (h *Histogram) bucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// ExemplarNear returns the exemplar closest (by bucket distance) to value
// v — used by the SLO engine to hand an operator the trace behind a p99
// estimate. It prefers the bucket containing v, then fans outward,
// checking slower buckets before faster ones at equal distance.
func (h *Histogram) ExemplarNear(v float64) (Exemplar, bool) {
	if h == nil || len(h.exemplars) == 0 {
		return Exemplar{}, false
	}
	b := sort.SearchFloat64s(h.bounds, v)
	for off := 0; off < len(h.exemplars); off++ {
		for _, i := range []int{b + off, b - off} {
			if i < 0 || i >= len(h.exemplars) {
				continue
			}
			if e := h.exemplars[i].Load(); e != nil {
				return *e, true
			}
		}
	}
	return Exemplar{}, false
}
