package obs

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler defaults: a short CPU window keeps a breach-triggered capture
// cheap enough to run on a loaded server, the retention ring bounds disk,
// and the minimum interval stops a flapping SLO from turning the profiler
// into its own load source.
const (
	DefProfileMaxCaptures = 4
	DefProfileCPUDuration = 1 * time.Second
	DefProfileMinInterval = 30 * time.Second
)

// Capture skip reasons.
var (
	ErrCaptureInFlight    = errors.New("obs: profile capture already in flight")
	ErrCaptureRateLimited = errors.New("obs: profile capture rate-limited")
)

// ProfilerOptions configures a Profiler.
type ProfilerOptions struct {
	// Dir is the capture root (required), typically <data-dir>/profiles.
	Dir string
	// MaxCaptures bounds retained capture bundles (default
	// DefProfileMaxCaptures); older bundles are deleted.
	MaxCaptures int
	// CPUDuration is the CPU-profile window (default DefProfileCPUDuration).
	CPUDuration time.Duration
	// MinInterval rate-limits consecutive captures (default
	// DefProfileMinInterval; negative disables the limit).
	MinInterval time.Duration
	// Registry receives capture counters (may be nil).
	Registry *Registry
	// Logger records capture events (may be nil).
	Logger *slog.Logger
	// Clock drives rate-limiting (default time.Now; injectable for tests).
	Clock func() time.Time
}

// Profiler captures bounded, rate-limited diagnostic bundles — a gzipped
// CPU profile, heap profile and goroutine dump plus a meta.json — into a
// directory ring. It is wired as an SLO engine OnBreach callback (capture
// the evidence while the regression is still happening) and behind the
// admin /debug/profile/capture endpoint for on-demand grabs.
type Profiler struct {
	dir      string
	max      int
	cpuDur   time.Duration
	minGap   time.Duration
	logger   *slog.Logger
	now      func() time.Time
	captures *CounterVec
	errs     *Counter
	skipped  *Counter

	mu       sync.Mutex
	busy     bool
	seq      int
	lastDone time.Time
	haveLast bool
}

// NewProfiler creates the capture directory and recovers the capture
// sequence from any bundles already on disk.
func NewProfiler(opts ProfilerOptions) (*Profiler, error) {
	if opts.Dir == "" {
		return nil, errors.New("obs: profiler needs a capture directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profiler dir: %w", err)
	}
	if opts.MaxCaptures <= 0 {
		opts.MaxCaptures = DefProfileMaxCaptures
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = DefProfileCPUDuration
	}
	if opts.MinInterval == 0 {
		opts.MinInterval = DefProfileMinInterval
	}
	if opts.Logger == nil {
		opts.Logger = Nop()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	p := &Profiler{
		dir:    opts.Dir,
		max:    opts.MaxCaptures,
		cpuDur: opts.CPUDuration,
		minGap: opts.MinInterval,
		logger: opts.Logger,
		now:    opts.Clock,
		captures: opts.Registry.CounterVecOpts("slicer_obs_profile_captures_total",
			"Completed profile captures, by trigger reason.", []string{"reason"}, VecOpts{MaxCardinality: 8}),
		errs: opts.Registry.Counter("slicer_obs_profile_capture_errors_total",
			"Profile captures that failed mid-write."),
		skipped: opts.Registry.Counter("slicer_obs_profile_captures_skipped_total",
			"Profile captures skipped because one was in flight or rate-limited."),
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("obs: profiler dir: %w", err)
	}
	for _, ent := range entries {
		var seq int
		var rest string
		if n, _ := fmt.Sscanf(ent.Name(), "capture-%d-%s", &seq, &rest); n >= 1 && seq > p.seq {
			p.seq = seq
		}
	}
	return p, nil
}

// Dir reports the capture root.
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// Trigger starts a capture in the background, dropping it silently (but
// counted) when one is running or rate-limited — the shape an SLO breach
// callback needs. No-op on a nil profiler.
func (p *Profiler) Trigger(reason string) {
	if p == nil {
		return
	}
	go func() {
		if _, err := p.CaptureNow(reason); err != nil &&
			!errors.Is(err, ErrCaptureInFlight) && !errors.Is(err, ErrCaptureRateLimited) {
			p.logger.Error("triggered profile capture failed", "reason", reason, "err", err)
		}
	}()
}

// CaptureNow synchronously captures one bundle, returning its directory.
// The bundle directory and every file in it are fsynced before return, so
// a SIGKILL immediately after a reported capture cannot lose it.
func (p *Profiler) CaptureNow(reason string) (string, error) {
	if p == nil {
		return "", errors.New("obs: profiler disabled")
	}
	reason = sanitizeFileToken(reason)
	p.mu.Lock()
	if p.busy {
		p.mu.Unlock()
		p.skipped.Inc()
		return "", ErrCaptureInFlight
	}
	if p.haveLast && p.minGap > 0 && p.now().Sub(p.lastDone) < p.minGap {
		p.mu.Unlock()
		p.skipped.Inc()
		return "", ErrCaptureRateLimited
	}
	p.busy = true
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	dir := filepath.Join(p.dir, fmt.Sprintf("capture-%06d-%s", seq, reason))
	err := p.capture(dir, seq, reason)

	p.mu.Lock()
	p.busy = false
	p.lastDone = p.now()
	p.haveLast = true
	p.mu.Unlock()

	if err != nil {
		p.errs.Inc()
		p.logger.Error("profile capture failed", "dir", dir, "reason", reason, "err", err)
		return dir, err
	}
	p.captures.WithLabelValues(reason).Inc()
	p.logger.Info("profile capture complete", "dir", dir, "reason", reason, "seq", seq)
	p.retain()
	return dir, nil
}

// capture writes one bundle: goroutine + heap snapshots first (cheap, so
// they survive even if CPU profiling is unavailable), then a CPU profile
// over p.cpuDur, then meta.json, each gzip-framed (meta excepted), fsynced
// file-by-file with a final directory fsync.
func (p *Profiler) capture(dir string, seq int, reason string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := struct {
		Seq        int      `json:"seq"`
		Reason     string   `json:"reason"`
		CPUSeconds float64  `json:"cpuSeconds"`
		UnixNano   int64    `json:"unixNano"`
		Files      []string `json:"files"`
		CPUError   string   `json:"cpuError,omitempty"`
	}{Seq: seq, Reason: reason, CPUSeconds: p.cpuDur.Seconds(), UnixNano: p.now().UnixNano()}

	if err := writeGzipFile(filepath.Join(dir, "goroutine.txt.gz"), func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 1)
	}); err != nil {
		return fmt.Errorf("goroutine dump: %w", err)
	}
	meta.Files = append(meta.Files, "goroutine.txt.gz")

	if err := writeGzipFile(filepath.Join(dir, "heap.pprof.gz"), func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	meta.Files = append(meta.Files, "heap.pprof.gz")

	// CPU profiling is process-global; losing the race to e.g. an operator
	// curling /debug/pprof/profile is recorded in meta, not fatal.
	if err := writeGzipFile(filepath.Join(dir, "cpu.pprof.gz"), func(w io.Writer) error {
		if err := pprof.StartCPUProfile(w); err != nil {
			return err
		}
		time.Sleep(p.cpuDur)
		pprof.StopCPUProfile()
		return nil
	}); err != nil {
		meta.CPUError = err.Error()
		_ = os.Remove(filepath.Join(dir, "cpu.pprof.gz"))
	} else {
		meta.Files = append(meta.Files, "cpu.pprof.gz")
	}

	if err := writeFsynced(filepath.Join(dir, "meta.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	}); err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	return syncDir(dir)
}

// retain deletes the oldest bundles beyond the retention cap. Bundle names
// embed a zero-padded sequence, so lexicographic order is capture order.
func (p *Profiler) retain() {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		p.logger.Error("profile retention scan failed", "err", err)
		return
	}
	var bundles []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "capture-") {
			bundles = append(bundles, ent.Name())
		}
	}
	sort.Strings(bundles)
	for len(bundles) > p.max {
		victim := filepath.Join(p.dir, bundles[0])
		if err := os.RemoveAll(victim); err != nil {
			p.logger.Error("profile retention delete failed", "dir", victim, "err", err)
			return
		}
		p.logger.Debug("profile capture evicted", "dir", victim)
		bundles = bundles[1:]
	}
}

// writeGzipFile streams fill through gzip into path, fsyncing before close.
func writeGzipFile(path string, fill func(io.Writer) error) error {
	return writeFsynced(path, func(w io.Writer) error {
		gz := gzip.NewWriter(w)
		if err := fill(gz); err != nil {
			return err
		}
		return gz.Close()
	})
}

// writeFsynced writes fill's output to path and fsyncs the file.
func writeFsynced(path string, fill func(io.Writer) error) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so entry creation survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitizeFileToken maps an arbitrary trigger reason onto a safe directory
// name component.
func sanitizeFileToken(s string) string {
	s = strings.ToLower(s)
	if len(s) > 32 {
		s = s[:32]
	}
	b := []byte(s)
	for i, c := range b {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
			b[i] = '-'
		}
	}
	out := strings.Trim(string(b), "-")
	if out == "" {
		return "manual"
	}
	return out
}
