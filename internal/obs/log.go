package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. level is one of debug,
// info, warn, error; format is text or json — the spellings the binaries'
// -log-level / -log-format flags accept.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// discardHandler drops every record without formatting it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Nop returns a logger that discards everything — the default for library
// components so callers never nil-check.
func Nop() *slog.Logger { return slog.New(discardHandler{}) }
