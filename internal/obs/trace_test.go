package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("client req")
	ctx := tr.Context()
	if ctx == nil || ctx.TraceID != tr.ID() || !ctx.Sampled {
		t.Fatalf("Context() = %+v for trace %s", ctx, tr.ID())
	}
	if err := ctx.Validate(); err != nil {
		t.Fatalf("fresh context invalid: %v", err)
	}

	// Across the wire: JSON round trip preserves the identity.
	blob, err := json.Marshal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var got TraceContext
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got != *ctx {
		t.Errorf("round trip = %+v, want %+v", got, *ctx)
	}

	// Server side: continuing the identity yields the same trace ID.
	srv := NewTraceWithID("cloud.cloud.search", got.TraceID)
	if srv.ID() != tr.ID() {
		t.Errorf("server trace id = %s, want %s", srv.ID(), tr.ID())
	}
	if (*Trace)(nil).Context() != nil {
		t.Error("nil trace produced a context")
	}
}

func TestTraceContextValidate(t *testing.T) {
	long := strings.Repeat("a", maxTraceIDLen)
	cases := []struct {
		name string
		ctx  *TraceContext
		ok   bool
	}{
		{"nil", nil, false},
		{"empty id", &TraceContext{}, false},
		{"valid", &TraceContext{TraceID: NewTraceID(), Sampled: true}, true},
		{"valid with parent", &TraceContext{TraceID: "00ff", ParentSpan: "abc123"}, true},
		{"max length", &TraceContext{TraceID: long}, true},
		{"over length", &TraceContext{TraceID: long + "a"}, false},
		{"uppercase", &TraceContext{TraceID: "DEADBEEF"}, false},
		{"non-hex", &TraceContext{TraceID: "xyz"}, false},
		{"path traversal", &TraceContext{TraceID: "../../etc/passwd"}, false},
		{"control chars", &TraceContext{TraceID: "ab\x00cd"}, false},
		{"bad parent", &TraceContext{TraceID: "00ff", ParentSpan: "not hex!"}, false},
		{"huge parent", &TraceContext{TraceID: "00ff", ParentSpan: long + "ff"}, false},
	}
	for _, tc := range cases {
		err := tc.ctx.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: hostile context accepted", tc.name)
			} else if !errors.Is(err, ErrBadTraceContext) {
				t.Errorf("%s: error %v does not wrap ErrBadTraceContext", tc.name, err)
			}
		}
	}
}

// FuzzTraceContextValidate feeds arbitrary identifiers through validation:
// it must never panic, and anything it accepts must be bounded hex.
func FuzzTraceContextValidate(f *testing.F) {
	f.Add("deadbeef", "cafe")
	f.Add("", "")
	f.Add(strings.Repeat("f", 100), "Z")
	f.Add("../../../etc", "\x00\xff")
	f.Fuzz(func(t *testing.T, id, parent string) {
		ctx := &TraceContext{TraceID: id, ParentSpan: parent, Sampled: true}
		err := ctx.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadTraceContext) {
				t.Fatalf("error %v does not wrap ErrBadTraceContext", err)
			}
			return
		}
		for _, s := range []string{id, parent} {
			if len(s) > maxTraceIDLen {
				t.Fatalf("accepted over-length token %q", s)
			}
			for i := 0; i < len(s); i++ {
				ch := s[i]
				if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
					t.Fatalf("accepted non-hex token %q", s)
				}
			}
		}
	})
}

func TestSpliceRemote(t *testing.T) {
	tr := NewTrace("client")
	endLocal := tr.Span("token")
	endLocal()
	remote := &TraceSummary{
		Name:       "cloud.cloud.search",
		TraceID:    tr.ID(),
		DurationNs: 10 * time.Millisecond,
		Spans: []SpanRecord{
			{Phase: "cloud.collect", Offset: 1 * time.Millisecond, Duration: 4 * time.Millisecond},
			{Phase: "cloud.witness", Party: "preset", Offset: 5 * time.Millisecond, Duration: 3 * time.Millisecond},
		},
	}
	start := tr.Start().Add(2 * time.Millisecond)
	tr.SpliceRemote("cloud", "cloud.search", start, 16*time.Millisecond, remote)

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5: %v", len(spans), spans)
	}
	byPhase := map[string]SpanRecord{}
	for _, s := range spans {
		byPhase[s.Phase] = s
	}
	rpc := byPhase["rpc:cloud.search"]
	if rpc.Party != "cloud" || rpc.Duration != 16*time.Millisecond || rpc.Offset != 2*time.Millisecond {
		t.Errorf("rpc span = %+v", rpc)
	}
	// Wire time is derived (client minus server), never a cross-machine
	// clock subtraction: 16ms observed - 10ms reported = 6ms on the wire.
	wire := byPhase["wire:cloud.search"]
	if wire.Duration != 6*time.Millisecond {
		t.Errorf("wire duration = %v, want 6ms", wire.Duration)
	}
	// Remote spans shift into the client timeline, centered in the RPC span
	// (offset 2ms + half of 6ms wire = 5ms), and inherit the party.
	collect := byPhase["cloud.collect"]
	if collect.Party != "cloud" {
		t.Errorf("collect party = %q, want cloud", collect.Party)
	}
	if want := 5*time.Millisecond + 1*time.Millisecond; collect.Offset != want {
		t.Errorf("collect offset = %v, want %v", collect.Offset, want)
	}
	if byPhase["cloud.witness"].Party != "preset" {
		t.Errorf("explicit party overwritten: %+v", byPhase["cloud.witness"])
	}

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cloud", "local", "wire:cloud.search", tr.ID()} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSpliceRemoteHostile(t *testing.T) {
	// A hostile server ships a huge span tree and an impossible duration;
	// the splice must stay bounded and the wire time clamps at zero.
	tr := NewTrace("client")
	spans := make([]SpanRecord, 100_000)
	for i := range spans {
		spans[i] = SpanRecord{Phase: fmt.Sprintf("junk-%d", i)}
	}
	remote := &TraceSummary{DurationNs: time.Hour, Spans: spans}
	tr.SpliceRemote("cloud", "m", tr.Start(), time.Millisecond, remote)
	got := tr.Spans()
	if len(got) != maxRemoteSpans+2 {
		t.Errorf("spliced %d spans, want %d", len(got), maxRemoteSpans+2)
	}
	for _, s := range got {
		if s.Phase == "wire:m" && s.Duration != 0 {
			t.Errorf("wire time = %v, want clamp to 0", s.Duration)
		}
	}

	// Context-free peer: only the client-side span.
	tr2 := NewTrace("client")
	tr2.SpliceRemote("chain", "m", tr2.Start(), time.Millisecond, nil)
	if n := len(tr2.Spans()); n != 1 {
		t.Errorf("nil summary spliced %d spans, want 1", n)
	}

	// Nil trace: no-op.
	(*Trace)(nil).SpliceRemote("cloud", "m", time.Now(), 0, remote)
}

// storedAt fabricates a finished trace whose Elapsed is deterministic by
// backdating the start (tests live in package obs for exactly this).
func storedAt(name string, elapsed time.Duration) *Trace {
	return &Trace{name: name, id: NewTraceID(), start: time.Now().Add(-elapsed)}
}

func TestTraceStoreRetention(t *testing.T) {
	s := NewTraceStore(4)
	var ids []string
	for i := 0; i < 10; i++ {
		tr := storedAt(fmt.Sprintf("t%d", i), time.Duration(i+1)*time.Second)
		ids = append(ids, tr.ID())
		s.Record(tr)
	}
	if s.Seen() != 10 {
		t.Errorf("Seen = %d, want 10", s.Seen())
	}
	recent := s.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].Name != "t9" || recent[3].Name != "t6" {
		t.Errorf("ring order = %s..%s, want t9..t6", recent[0].Name, recent[3].Name)
	}
	if _, ok := s.Get(ids[9]); !ok {
		t.Error("latest trace not found by ID")
	}
	if _, ok := s.Get("0000"); ok {
		t.Error("found a trace that was never recorded")
	}
	// The slowest table keeps the latency outliers even after ring eviction.
	slowest := s.Slowest()
	if len(slowest) == 0 || slowest[0].Name != "t9" {
		t.Fatalf("slowest = %v", slowest)
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].DurationNs > slowest[i-1].DurationNs {
			t.Errorf("slowest not sorted at %d: %v", i, slowest)
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Seen     uint64        `json:"seen"`
		Sampling int           `json:"sampling"`
		Recent   []StoredTrace `json:"recent"`
		Slowest  []StoredTrace `json:"slowest"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("list payload not JSON: %v\n%s", err, buf.String())
	}
	if payload.Seen != 10 || len(payload.Recent) != 4 {
		t.Errorf("payload = seen %d recent %d", payload.Seen, len(payload.Recent))
	}
}

func TestTraceStoreSampling(t *testing.T) {
	s := NewTraceStore(64)
	s.SetSampling(3)
	slowID := ""
	for i := 0; i < 9; i++ {
		d := time.Millisecond
		if i == 5 {
			d = time.Minute // an outlier landing on a sampled-out slot
		}
		tr := storedAt(fmt.Sprintf("t%d", i), d)
		if i == 5 {
			slowID = tr.ID()
		}
		s.Record(tr)
	}
	if got := len(s.Recent()); got != 3 {
		t.Errorf("sampled ring holds %d, want 3 (1 of every 3)", got)
	}
	// Sampling must never lose outliers: the slow table sees every trace.
	if _, ok := s.Get(slowID); !ok {
		t.Error("sampled-out outlier missing from the slowest table")
	}
	if s.Seen() != 9 {
		t.Errorf("Seen = %d, want 9", s.Seen())
	}

	// Nil-safety across the API.
	var nilStore *TraceStore
	nilStore.Record(NewTrace("x"))
	nilStore.SetCapacity(8)
	nilStore.SetSampling(2)
	if nilStore.Seen() != 0 || nilStore.Recent() != nil || nilStore.Slowest() != nil {
		t.Error("nil store not inert")
	}
	if _, ok := nilStore.Get("aa"); ok {
		t.Error("nil store found a trace")
	}
}

// TestTraceStoreRace exercises concurrent record/list/evict/reconfigure; run
// under -race in CI.
func TestTraceStoreRace(t *testing.T) {
	s := NewTraceStore(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i))
				end := tr.Span("phase")
				end()
				s.Record(tr)
				if i%17 == 0 {
					s.SetCapacity(4 + i%8)
				}
				if i%23 == 0 {
					s.SetSampling(1 + i%3)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = s.Recent()
			_ = s.Slowest()
			_, _ = s.Get("feed")
			_ = s.WriteJSON(&bytes.Buffer{})
			_ = s.Seen()
		}
	}()
	wg.Wait()
}
