package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable injected clock shared by a test and a ring.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestWindowRingEviction checks the ring's core property: observations
// fall out of the merged view exactly when the clock leaves their
// sub-window behind, without any background goroutine.
func TestWindowRingEviction(t *testing.T) {
	clk := newFakeClock(time.Unix(1000, 0))
	ring := newWindowRing([]float64{1, 10}, WindowOptions{
		SubWindows: 3, Width: 10 * time.Second, Clock: clk.Now,
	})
	if got, want := ring.span(), 30*time.Second; got != want {
		t.Fatalf("span = %v, want %v", got, want)
	}

	ring.observe(0.5) // window A
	clk.Advance(10 * time.Second)
	ring.observe(5) // window B
	clk.Advance(10 * time.Second)
	ring.observe(50) // window C

	if _, total, sum, _ := ring.view(ring.span()); total != 3 || sum != 55.5 {
		t.Errorf("full view = %d obs, sum %v; want 3, 55.5", total, sum)
	}
	// A trailing 10s view holds only the newest sub-window.
	if _, total, sum, eff := ring.view(10 * time.Second); total != 1 || sum != 50 || eff != 10*time.Second {
		t.Errorf("10s view = %d obs, sum %v over %v; want 1, 50, 10s", total, sum, eff)
	}

	// Advancing one more window evicts A: its slot is reused.
	clk.Advance(10 * time.Second)
	ring.observe(0.5) // window D, overwrites A's slot
	if _, total, sum, _ := ring.view(ring.span()); total != 3 || sum != 55.5 {
		t.Errorf("after eviction = %d obs, sum %v; want 3 (B, C, D), 55.5", total, sum)
	}

	// A long idle stretch empties the whole view lazily.
	clk.Advance(time.Hour)
	if _, total, _, _ := ring.view(ring.span()); total != 0 {
		t.Errorf("idle view = %d obs, want 0", total)
	}
}

// TestWindowRingSpanClamp checks that a requested span is clamped to
// [one sub-window, the full ring].
func TestWindowRingSpanClamp(t *testing.T) {
	clk := newFakeClock(time.Unix(0, 0))
	ring := newWindowRing([]float64{1}, WindowOptions{
		SubWindows: 4, Width: time.Second, Clock: clk.Now,
	})
	if _, _, _, eff := ring.view(0); eff != time.Second {
		t.Errorf("zero span clamps to %v, want 1s", eff)
	}
	if _, _, _, eff := ring.view(time.Hour); eff != 4*time.Second {
		t.Errorf("huge span clamps to %v, want 4s", eff)
	}
	// A fractional span rounds up to whole sub-windows.
	if _, _, _, eff := ring.view(1500 * time.Millisecond); eff != 2*time.Second {
		t.Errorf("1.5s span rounds to %v, want 2s", eff)
	}
}

// TestWindowRingPreEpoch pins floor division for clocks before the Unix
// epoch: adjacent pre-epoch instants must not share a window index with
// post-epoch ones (plain integer division truncates toward zero and
// would merge windows around t=0).
func TestWindowRingPreEpoch(t *testing.T) {
	clk := newFakeClock(time.Unix(-5, 0))
	ring := newWindowRing([]float64{1}, WindowOptions{
		SubWindows: 4, Width: 10 * time.Second, Clock: clk.Now,
	})
	before := ring.windowIndex(time.Unix(-5, 0))
	after := ring.windowIndex(time.Unix(5, 0))
	if before != -1 || after != 0 {
		t.Errorf("window indices around epoch = %d, %d; want -1, 0", before, after)
	}
	ring.observe(0.5)
	clk.Advance(10 * time.Second) // crosses the epoch into window 0
	ring.observe(0.5)
	if _, total, _, _ := ring.view(ring.span()); total != 2 {
		t.Errorf("cross-epoch view = %d obs, want 2", total)
	}
}

// TestQuantileFromBuckets pins the interpolation arithmetic on a
// hand-computed distribution.
func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{100, 200, 400}
	// 10 obs <= 100, 60 in (100,200], 20 in (200,400], 10 above.
	counts := []uint64{10, 60, 20, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.05, 50},  // target 5 inside the first bucket: 0 + 100*5/10
		{0.10, 100}, // exactly the first bucket's cumulative count
		{0.50, 300.0/180*100 + 100 - 100.0/180*100}, // see below
		{0.90, 400},  // target 90 = cumulative through the third bucket
		{0.999, 400}, // +Inf bucket reports the last finite bound
		{1.5, 400},   // q clamps to 1
	}
	// q=0.5: target 50, cum before second bucket 10, so
	// 100 + (200-100)*(50-10)/60 = 166.666...
	cases[2].want = 100 + 100*40.0/60
	for _, c := range cases {
		if got := quantileFromBuckets(bounds, counts, 100, c.q); !approxEq(got, c.want) {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantileFromBuckets(bounds, []uint64{0, 0, 0, 0}, 0, 0.5); got != 0 {
		t.Errorf("empty distribution quantile = %v, want 0", got)
	}
}

// TestGoodFraction pins the SLO numerator estimate.
func TestGoodFraction(t *testing.T) {
	bounds := []float64{100, 200}
	counts := []uint64{50, 30, 20}
	cases := []struct {
		target float64
		want   float64
	}{
		{100, 0.5},           // whole first bucket
		{200, 0.8},           // first two buckets
		{150, 0.5 + 0.3*0.5}, // halfway through the second bucket
		{1000, 0.8},          // +Inf observations are never good
	}
	for _, c := range cases {
		if got := goodFraction(bounds, counts, 100, c.target); !approxEq(got, c.want) {
			t.Errorf("target=%v: got %v, want %v", c.target, got, c.want)
		}
	}
	if got := goodFraction(bounds, []uint64{0, 0, 0}, 0, 100); got != 1 {
		t.Errorf("idle service good fraction = %v, want 1 (not burning)", got)
	}
}

// TestWindowedHistogramRegistry checks the registry plumbing: windowed
// histograms appear in Windows()/WindowSnapshotFor and re-registering
// keeps the first ring.
func TestWindowedHistogramRegistry(t *testing.T) {
	r := NewRegistry()
	clk := newFakeClock(time.Unix(1000, 0))
	h := r.WindowedHistogramOpts("w_seconds", "", []float64{1, 10},
		WindowOptions{SubWindows: 2, Width: time.Second, Clock: clk.Now})
	if !h.Windowed() {
		t.Fatal("histogram not windowed")
	}
	h.Observe(0.5)
	h.Observe(5)

	snap, ok := r.WindowSnapshotFor("w_seconds")
	if !ok {
		t.Fatal("WindowSnapshotFor missed the registered histogram")
	}
	if snap.Count != 2 || snap.Sum != 5.5 {
		t.Errorf("snapshot = %+v, want count 2 sum 5.5", snap)
	}
	if all := r.Windows(); len(all) != 1 || all["w_seconds"].Count != 2 {
		t.Errorf("Windows() = %+v", all)
	}

	// Re-registering the same name keeps the first ring and its clock.
	h2 := r.WindowedHistogramOpts("w_seconds", "", []float64{1, 10}, WindowOptions{})
	if h2 != h {
		t.Error("re-registration returned a different histogram")
	}
	if got := h2.Window().Count; got != 2 {
		t.Errorf("ring was replaced on re-registration (count %d, want 2)", got)
	}

	// The quantile gauges flow through the generic snapshot API.
	flat := r.Snapshot()
	if _, ok := flat[`w_seconds_window{quantile="p99"}`]; !ok {
		t.Errorf("snapshot missing windowed p99 gauge: %v", flat)
	}

	// A plain histogram stays un-windowed and unlisted.
	if r.HistogramBuckets("plain_seconds", "", []float64{1}).Windowed() {
		t.Error("plain histogram reports a window")
	}
	if _, ok := r.WindowSnapshotFor("plain_seconds"); ok {
		t.Error("WindowSnapshotFor invented a window")
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
