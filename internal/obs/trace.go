package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Trace collects the spans of one request as it crosses pipeline phases —
// and, via TraceContext propagation over the wire protocol, as it crosses
// process boundaries. It is safe for concurrent span recording (the cloud
// fans tokens across a worker pool) and nil-safe: every method on a nil
// *Trace is a no-op, so call sites thread an optional trace without
// branching.
type Trace struct {
	name  string
	id    string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one completed phase of a trace. Party is empty for spans
// recorded by the local process and names the remote party ("cloud",
// "chain") for spans spliced in from a wire peer.
type SpanRecord struct {
	Phase    string        `json:"phase"`
	Party    string        `json:"party,omitempty"`
	Offset   time.Duration `json:"offsetNs"`   // start relative to the trace start
	Duration time.Duration `json:"durationNs"` // wall time inside the phase
}

// NewTrace starts a named trace with a fresh random trace ID.
func NewTrace(name string) *Trace {
	return &Trace{name: name, id: NewTraceID(), start: time.Now()}
}

// NewTraceWithID starts a named trace continuing an existing trace identity
// (the server side of a propagated TraceContext).
func NewTraceWithID(name, id string) *Trace {
	return &Trace{name: name, id: id, start: time.Now()}
}

// Name reports the trace name ("" on a nil trace).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// ID reports the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start reports when the trace began (zero on a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// record appends one completed span.
func (t *Trace) record(phase string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{Phase: phase, Offset: start.Sub(t.start), Duration: d})
	t.mu.Unlock()
}

var nopEnd = func() {}

// Span starts a phase span; invoke the returned func to end it. On a nil
// trace the clock is never read.
func (t *Trace) Span(phase string) func() {
	if t == nil {
		return nopEnd
	}
	t0 := time.Now()
	return func() { t.record(phase, t0, time.Since(t0)) }
}

// StartPhase times one pipeline phase into an optional histogram and an
// optional trace; either (or both) may be nil, in which case the clock is
// not read. Invoke the returned func when the phase ends.
func StartPhase(h *Histogram, t *Trace, phase string) func() {
	if h == nil && t == nil {
		return nopEnd
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		h.ObserveDuration(d)
		t.record(phase, t0, d)
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Elapsed reports wall time since the trace started (0 on a nil trace).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// WriteText dumps the trace as aligned human-readable lines.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	return writeSpansText(w, t.name, t.id, t.Elapsed(), t.Spans())
}

// writeSpansText is the shared text renderer for live and stored traces.
func writeSpansText(w io.Writer, name, id string, elapsed time.Duration, spans []SpanRecord) error {
	if _, err := fmt.Fprintf(w, "trace %s [%s] (%d spans, %.3fms total)\n",
		name, id, len(spans), float64(elapsed.Microseconds())/1000); err != nil {
		return err
	}
	for _, s := range spans {
		party := s.Party
		if party == "" {
			party = "local"
		}
		if _, err := fmt.Fprintf(w, "  %-8s %-24s +%9.3fms %9.3fms\n",
			party, s.Phase,
			float64(s.Offset.Microseconds())/1000,
			float64(s.Duration.Microseconds())/1000); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders {name, id, elapsedNs, spans}.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(struct {
		Name      string        `json:"name"`
		ID        string        `json:"id"`
		ElapsedNs time.Duration `json:"elapsedNs"`
		Spans     []SpanRecord  `json:"spans"`
	}{t.name, t.id, t.Elapsed(), t.Spans()})
}

// ---------------------------------------------------------------------------
// Cross-process propagation

// maxTraceIDLen bounds the identifiers a peer may send: a 16-byte hex ID is
// 32 characters, so 64 leaves headroom without letting a hostile peer ship
// unbounded strings.
const maxTraceIDLen = 64

// maxRemoteSpans bounds how many spans one remote span tree may splice into
// a local trace, so a hostile or buggy server cannot blow up client memory.
const maxRemoteSpans = 1024

// NewTraceID returns a fresh random 16-byte lowercase-hex trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable for key material, but a trace
		// ID only needs uniqueness; fall back to the wall clock.
		return fmt.Sprintf("%032x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// TraceContext is the trace identity a client attaches to a wire request so
// the server joins the same distributed trace. The zero value is "no
// tracing".
type TraceContext struct {
	// TraceID identifies the distributed trace (lowercase hex, at most 64
	// characters).
	TraceID string `json:"traceId"`
	// ParentSpan optionally names the client-side span this request runs
	// under (same character set and bound as TraceID).
	ParentSpan string `json:"parentSpan,omitempty"`
	// Sampled tells the server whether to record and return spans. A false
	// value propagates the identity without the cost.
	Sampled bool `json:"sampled"`
}

// Context returns the trace's propagation context (nil on a nil trace).
func (t *Trace) Context() *TraceContext {
	if t == nil {
		return nil
	}
	return &TraceContext{TraceID: t.id, Sampled: true}
}

// ErrBadTraceContext reports a malformed or hostile trace context. Servers
// ignore such contexts rather than failing the request.
var ErrBadTraceContext = errors.New("obs: malformed trace context")

// Validate checks a received trace context against the propagation rules:
// non-empty bounded lowercase-hex TraceID, optional bounded lowercase-hex
// ParentSpan. It never panics regardless of input.
func (c *TraceContext) Validate() error {
	if c == nil {
		return fmt.Errorf("%w: nil", ErrBadTraceContext)
	}
	if c.TraceID == "" {
		return fmt.Errorf("%w: empty trace id", ErrBadTraceContext)
	}
	if err := validTraceToken(c.TraceID); err != nil {
		return fmt.Errorf("%w: trace id %s", ErrBadTraceContext, err)
	}
	if c.ParentSpan != "" {
		if err := validTraceToken(c.ParentSpan); err != nil {
			return fmt.Errorf("%w: parent span %s", ErrBadTraceContext, err)
		}
	}
	return nil
}

func validTraceToken(s string) error {
	if len(s) > maxTraceIDLen {
		return fmt.Errorf("exceeds %d characters", maxTraceIDLen)
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return fmt.Errorf("has non-hex character %q", ch)
		}
	}
	return nil
}

// TraceSummary is the completed span tree of one (typically server-side)
// trace, in the form that crosses the wire back to the caller.
type TraceSummary struct {
	Name       string        `json:"name"`
	TraceID    string        `json:"traceId,omitempty"`
	DurationNs time.Duration `json:"durationNs"`
	Spans      []SpanRecord  `json:"spans"`
}

// Summary freezes the trace into its wire form (nil on a nil trace).
func (t *Trace) Summary() *TraceSummary {
	if t == nil {
		return nil
	}
	return &TraceSummary{Name: t.name, TraceID: t.id, DurationNs: t.Elapsed(), Spans: t.Spans()}
}

// SpliceRemote merges a remote party's span tree into this trace under one
// client-observed RPC call: it records the client-side span ("rpc:<method>",
// covering the full round trip), a derived wire-time span ("wire:<method>",
// the client duration minus the server-reported duration — never a clock
// subtraction across machines, so clock skew cannot corrupt the tree), and
// every remote span offset-shifted into the client timeline and tagged with
// the party name. start/clientDur are the local observation of the call;
// remote may be nil (context-free peer), in which case only the client span
// is recorded. Hostile summaries are bounded: at most maxRemoteSpans spans
// splice, negative derived wire time clamps to zero.
func (t *Trace) SpliceRemote(party, method string, start time.Time, clientDur time.Duration, remote *TraceSummary) {
	if t == nil {
		return
	}
	clientOffset := start.Sub(t.start)
	records := make([]SpanRecord, 0, 2)
	records = append(records, SpanRecord{
		Phase: "rpc:" + method, Party: party, Offset: clientOffset, Duration: clientDur,
	})
	if remote != nil {
		wire := clientDur - remote.DurationNs
		if wire < 0 {
			wire = 0
		}
		records = append(records, SpanRecord{
			Phase: "wire:" + method, Party: party, Offset: clientOffset, Duration: wire,
		})
		// Center the server's timeline inside the client span: the send and
		// receive halves of the wire time flank the server work.
		shift := clientOffset + wire/2
		spans := remote.Spans
		if len(spans) > maxRemoteSpans {
			spans = spans[:maxRemoteSpans]
		}
		for _, rs := range spans {
			p := rs.Party
			if p == "" {
				p = party
			}
			records = append(records, SpanRecord{
				Phase: rs.Phase, Party: p, Offset: shift + rs.Offset, Duration: rs.Duration,
			})
		}
	}
	t.mu.Lock()
	t.spans = append(t.spans, records...)
	t.mu.Unlock()
}
