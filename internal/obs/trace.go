package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Trace collects the spans of one request as it crosses pipeline phases.
// It is safe for concurrent span recording (the cloud fans tokens across a
// worker pool) and nil-safe: every method on a nil *Trace is a no-op, so
// call sites thread an optional trace without branching.
type Trace struct {
	name  string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one completed phase of a trace.
type SpanRecord struct {
	Phase    string        `json:"phase"`
	Offset   time.Duration `json:"offsetNs"`   // start relative to the trace start
	Duration time.Duration `json:"durationNs"` // wall time inside the phase
}

// NewTrace starts a named trace.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name reports the trace name ("" on a nil trace).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// record appends one completed span.
func (t *Trace) record(phase string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{Phase: phase, Offset: start.Sub(t.start), Duration: d})
	t.mu.Unlock()
}

var nopEnd = func() {}

// Span starts a phase span; invoke the returned func to end it. On a nil
// trace the clock is never read.
func (t *Trace) Span(phase string) func() {
	if t == nil {
		return nopEnd
	}
	t0 := time.Now()
	return func() { t.record(phase, t0, time.Since(t0)) }
}

// StartPhase times one pipeline phase into an optional histogram and an
// optional trace; either (or both) may be nil, in which case the clock is
// not read. Invoke the returned func when the phase ends.
func StartPhase(h *Histogram, t *Trace, phase string) func() {
	if h == nil && t == nil {
		return nopEnd
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		h.ObserveDuration(d)
		t.record(phase, t0, d)
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Elapsed reports wall time since the trace started (0 on a nil trace).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// WriteText dumps the trace as aligned human-readable lines.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	if _, err := fmt.Fprintf(w, "trace %s (%d spans, %.3fms total)\n",
		t.name, len(spans), float64(t.Elapsed().Microseconds())/1000); err != nil {
		return err
	}
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "  %-24s +%9.3fms %9.3fms\n",
			s.Phase,
			float64(s.Offset.Microseconds())/1000,
			float64(s.Duration.Microseconds())/1000); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders {name, elapsedNs, spans}.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(struct {
		Name      string        `json:"name"`
		ElapsedNs time.Duration `json:"elapsedNs"`
		Spans     []SpanRecord  `json:"spans"`
	}{t.name, t.Elapsed(), t.Spans()})
}
