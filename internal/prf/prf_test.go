package prf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewKeyDistinct(t *testing.T) {
	k1, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	k2, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if k1.Equal(k2) {
		t.Fatal("two fresh keys are equal")
	}
}

func TestKeyFromBytes(t *testing.T) {
	tests := []struct {
		name    string
		size    int
		wantErr bool
	}{
		{"too-short", MinKeySize - 1, true},
		{"empty", 0, true},
		{"min", MinKeySize, false},
		{"default", DefaultKeySize, false},
		{"long", 64, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := KeyFromBytes(make([]byte, tc.size))
			if (err != nil) != tc.wantErr {
				t.Errorf("KeyFromBytes(%d bytes) err=%v, wantErr=%v", tc.size, err, tc.wantErr)
			}
		})
	}
}

func TestKeyFromBytesCopies(t *testing.T) {
	raw := make([]byte, DefaultKeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	before := k.Eval([]byte("msg"))
	raw[0] = 0xff // mutate the caller's slice
	after := k.Eval([]byte("msg"))
	if !bytes.Equal(before, after) {
		t.Error("key shares memory with the caller's slice")
	}
}

func TestEvalDeterministicAndSized(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	out1 := k.Eval([]byte("hello"))
	out2 := k.Eval([]byte("hello"))
	if !bytes.Equal(out1, out2) {
		t.Error("Eval not deterministic")
	}
	if len(out1) != Size {
		t.Errorf("Eval output %d bytes, want %d", len(out1), Size)
	}
	if len(k.EvalFull([]byte("hello"))) != 32 {
		t.Error("EvalFull should return 32 bytes")
	}
}

func TestEvalDistinguishesInputs(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return bytes.Equal(k.Eval(a), k.Eval(b))
		}
		return !bytes.Equal(k.Eval(a), k.Eval(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalConcatMatchesEval(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	f := func(a, b []byte) bool {
		joined := append(append([]byte(nil), a...), b...)
		return bytes.Equal(k.EvalConcat(a, b), k.Eval(joined))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubKeyIndependence(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	g := k.SubKey("G")
	s := k.SubKey("sore")
	g2 := k.SubKey("G")
	if !g.Equal(g2) {
		t.Error("SubKey not deterministic")
	}
	if g.Equal(s) {
		t.Error("distinct labels produced equal subkeys")
	}
	if g.Equal(k) {
		t.Error("subkey equals parent key")
	}
	msg := []byte("m")
	if bytes.Equal(g.Eval(msg), s.Eval(msg)) {
		t.Error("distinct subkeys agree on an evaluation")
	}
}

func TestEvalWithCounter(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	msg := []byte("trapdoor")
	if bytes.Equal(k.EvalWithCounter(msg, 0), k.EvalWithCounter(msg, 1)) {
		t.Error("counter does not separate evaluations")
	}
	// Counter encoding must be fixed width: (msg, c) pairs cannot alias.
	a := k.EvalWithCounter([]byte{1}, 0x0203040506070809)
	b := k.EvalWithCounter([]byte{1, 2}, 0x03040506070809)
	if bytes.Equal(a, b) {
		t.Error("counter encoding aliases across message lengths")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	k2, err := KeyFromBytes(k.Bytes())
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	if !k.Equal(k2) {
		t.Error("Bytes/KeyFromBytes round trip lost the key")
	}
}

func TestZeroKeyInvalid(t *testing.T) {
	var k Key
	if k.Valid() {
		t.Error("zero key reported valid")
	}
}

func TestEvaluatorMatchesEvalWithCounter(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	e := k.NewEvaluator()
	msgs := [][]byte{[]byte("trapdoor-a"), []byte("trapdoor-b"), {}}
	for _, msg := range msgs {
		for ctr := uint64(0); ctr < 20; ctr++ {
			want := k.EvalWithCounter(msg, ctr)
			got := e.EvalWithCounter(msg, ctr)
			if !bytes.Equal(got, want) {
				t.Fatalf("Evaluator(%q, %d) = %x, want %x", msg, ctr, got, want)
			}
		}
	}
	// The returned slice aliases the internal buffer: a later call may
	// overwrite it, but the value read before the next call must be right.
	first := append([]byte(nil), e.EvalWithCounter(msgs[0], 1)...)
	e.EvalWithCounter(msgs[1], 2)
	if !bytes.Equal(first, k.EvalWithCounter(msgs[0], 1)) {
		t.Fatal("copied evaluator output corrupted by later call")
	}
}

func TestEvaluatorAllocFree(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	e := k.NewEvaluator()
	msg := []byte("alloc-check")
	e.EvalWithCounter(msg, 0) // warm the sum buffer
	allocs := testing.AllocsPerRun(100, func() {
		e.EvalWithCounter(msg, 7)
	})
	if allocs > 0 {
		t.Fatalf("Evaluator.EvalWithCounter allocates %.1f times per call, want 0", allocs)
	}
}
