// Package prf implements the pseudo-random functions used throughout Slicer.
//
// The paper instantiates its PRFs F and G with HMAC-128. We use HMAC-SHA256
// truncated to 16 bytes, which is a PRF under the standard assumption that
// the SHA-256 compression function is a PRF. The package also provides a
// small deterministic key-derivation facility so that a single master key
// can be split into the independent keys the protocol needs (K, K_R, SORE
// key, ...). Keys may be any length >= MinKeySize: the protocol keys F with
// the 16-byte PRF outputs G1/G2, which HMAC supports natively.
package prf

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
)

// Size is the output size of the PRF in bytes (128 bits, matching the
// paper's HMAC-128 instantiation).
const Size = 16

// DefaultKeySize is the size of freshly sampled PRF keys in bytes.
const DefaultKeySize = 32

// MinKeySize is the smallest accepted key length (128-bit security floor).
const MinKeySize = 16

// Key is a PRF key. The zero value is not a valid key; use NewKey,
// KeyFromBytes or DeriveKey.
type Key struct {
	k []byte
}

// NewKey samples a fresh uniformly random PRF key.
func NewKey() (Key, error) {
	k := make([]byte, DefaultKeySize)
	if _, err := rand.Read(k); err != nil {
		return Key{}, fmt.Errorf("sample prf key: %w", err)
	}
	return Key{k: k}, nil
}

// KeyFromBytes builds a key from raw material (copied). The protocol keys
// its index PRF F with the 16-byte outputs of G, so any length >= MinKeySize
// is accepted.
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) < MinKeySize {
		return Key{}, fmt.Errorf("prf key must be at least %d bytes, got %d", MinKeySize, len(b))
	}
	k := make([]byte, len(b))
	copy(k, b)
	return Key{k: k}, nil
}

// Bytes returns a copy of the raw key material.
func (k Key) Bytes() []byte {
	out := make([]byte, len(k.k))
	copy(out, k.k)
	return out
}

// Valid reports whether the key holds usable material.
func (k Key) Valid() bool { return len(k.k) >= MinKeySize }

// Eval computes the PRF F_k(msg), returning a Size-byte output.
func (k Key) Eval(msg []byte) []byte {
	mac := hmac.New(sha256.New, k.k)
	mac.Write(msg)
	sum := mac.Sum(nil)
	return sum[:Size]
}

// EvalFull computes the untruncated 32-byte HMAC-SHA256 output, for callers
// that need the full width (key derivation, commitments).
func (k Key) EvalFull(msg []byte) []byte {
	mac := hmac.New(sha256.New, k.k)
	mac.Write(msg)
	return mac.Sum(nil)
}

// EvalConcat computes F_k(a || b || ...) without materialising the
// concatenation.
func (k Key) EvalConcat(parts ...[]byte) []byte {
	mac := hmac.New(sha256.New, k.k)
	for _, p := range parts {
		mac.Write(p)
	}
	sum := mac.Sum(nil)
	return sum[:Size]
}

// SubKey derives an independent PRF key for the given label. Distinct labels
// yield computationally independent keys (HKDF-style expansion with a domain
// separator).
func (k Key) SubKey(label string) Key {
	mac := hmac.New(sha256.New, k.k)
	mac.Write([]byte("slicer/subkey/v1/"))
	mac.Write([]byte(label))
	return Key{k: mac.Sum(nil)}
}

// EvalWithCounter computes F_k(msg || counter) with the counter encoded as a
// fixed-width big-endian uint64 — the `t||c` addressing used by the
// encrypted index.
func (k Key) EvalWithCounter(msg []byte, counter uint64) []byte {
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	return k.EvalConcat(msg, c[:])
}

// Equal reports whether two keys hold the same material, in constant time.
func (k Key) Equal(other Key) bool {
	return len(k.k) == len(other.k) && hmac.Equal(k.k, other.k)
}

// Evaluator evaluates one key's PRF repeatedly without per-call heap
// allocations: the keyed HMAC state and the output buffer are created once
// and reused. The hot search loop walks thousands of (label, mask)
// evaluations per request, where the per-call hmac.New + Sum allocations of
// Key.EvalWithCounter dominate; an Evaluator amortizes them away.
//
// An Evaluator is NOT safe for concurrent use; create one per goroutine.
type Evaluator struct {
	mac hash.Hash
	sum []byte
	ctr [8]byte // counter scratch; a local would escape through hash.Hash
}

// NewEvaluator creates a reusable evaluator for the key.
func (k Key) NewEvaluator() *Evaluator {
	return &Evaluator{mac: hmac.New(sha256.New, k.k)}
}

// EvalWithCounter computes F_k(msg || counter), identical to
// Key.EvalWithCounter. The returned slice aliases the evaluator's internal
// buffer and is only valid until the next call.
func (e *Evaluator) EvalWithCounter(msg []byte, counter uint64) []byte {
	binary.BigEndian.PutUint64(e.ctr[:], counter)
	e.mac.Reset()
	e.mac.Write(msg)
	e.mac.Write(e.ctr[:])
	e.sum = e.mac.Sum(e.sum[:0])
	return e.sum[:Size]
}
