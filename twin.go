package slicer

import (
	"slicer/internal/core"
)

// TwinScheme is a single-process deployment of the deletion/update
// extension (paper §V-F): an insert instance and a delete instance run side
// by side, a query's effective result is the set difference, and both
// halves of every response are publicly verifiable.
type TwinScheme struct {
	owner *core.TwinOwner
	user  *core.TwinUser
	cloud *core.TwinCloud
}

// NewTwinScheme creates a twin deployment over an initial database.
func NewTwinScheme(params Params, db []Record) (*TwinScheme, error) {
	owner, err := core.NewTwinOwner(params)
	if err != nil {
		return nil, err
	}
	built, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewTwinCloud(
		owner.Add.CloudInit(built.Add.Index),
		owner.Del.CloudInit(built.Del.Index),
		core.WitnessCached,
	)
	if err != nil {
		return nil, err
	}
	user, err := core.NewTwinUser(owner.ClientState())
	if err != nil {
		return nil, err
	}
	return &TwinScheme{owner: owner, user: user, cloud: cloud}, nil
}

func (s *TwinScheme) sync(up *core.TwinUpdate) error {
	if err := s.cloud.ApplyUpdate(up); err != nil {
		return err
	}
	s.user.Add.UpdateStates(s.owner.Add.StatesSnapshot())
	s.user.Del.UpdateStates(s.owner.Del.StatesSnapshot())
	return nil
}

// Insert adds new records.
func (s *TwinScheme) Insert(records []Record) error {
	up, err := s.owner.Insert(records)
	if err != nil {
		return err
	}
	return s.sync(up)
}

// Delete removes previously inserted records. Each record must carry the
// exact attribute values it was inserted with so its keywords cancel.
func (s *TwinScheme) Delete(records []Record) error {
	up, err := s.owner.Delete(records)
	if err != nil {
		return err
	}
	return s.sync(up)
}

// Update replaces a record (one deletion plus one insertion under a fresh
// record ID — IDs are single-use in the scheme).
func (s *TwinScheme) Update(old, newRecord Record) error {
	up, err := s.owner.Update(old, newRecord)
	if err != nil {
		return err
	}
	return s.sync(up)
}

// Search runs a verified query against both instances and returns the IDs
// of live (inserted and not deleted) matching records.
func (s *TwinScheme) Search(q Query) ([]uint64, error) {
	req, err := s.user.Token(q)
	if err != nil {
		return nil, err
	}
	resp, err := s.cloud.Search(req)
	if err != nil {
		return nil, err
	}
	if err := core.VerifyTwinResponse(
		s.owner.Add.AccumulatorPub(), s.owner.Del.AccumulatorPub(),
		s.owner.Add.Ac(), s.owner.Del.Ac(), req, resp); err != nil {
		return nil, err
	}
	return s.user.Decrypt(resp)
}
