package slicer

import (
	"testing"
)

func TestVerifyFreshness(t *testing.T) {
	db := []Record{NewRecord(1, 3), NewRecord(2, 7)}
	d, err := NewDeployment(DeploymentConfig{Params: testParams(8)}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	// Fresh at deployment (digest set by the constructor).
	if err := d.VerifyFreshness(); err != nil {
		t.Fatalf("freshness at deployment: %v", err)
	}
	// After inserts the light-client path runs.
	for i := 0; i < 3; i++ {
		if _, err := d.Insert([]Record{NewRecord(uint64(10+i), 3)}); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		if err := d.VerifyFreshness(); err != nil {
			t.Fatalf("freshness after insert %d: %v", i, err)
		}
	}
	// The user-side staleness signal: the counter advanced once per insert.
	count, err := d.AcUpdateCount()
	if err != nil {
		t.Fatalf("AcUpdateCount: %v", err)
	}
	if count != 3 {
		t.Errorf("AcUpdateCount = %d, want 3", count)
	}

	// Simulate a withheld update: the owner advances without posting the
	// digest — freshness verification must fail.
	out, err := d.Owner().Insert([]Record{NewRecord(99, 3)})
	if err != nil {
		t.Fatalf("owner Insert: %v", err)
	}
	if err := d.Cloud().ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if err := d.VerifyFreshness(); err == nil {
		t.Error("stale on-chain digest passed the freshness check")
	}
}
