package slicer

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

// TestDistributedSearchMetrics is the end-to-end acceptance check for the
// observability layer: a full distributed fair-exchange search (remote
// cloud, remote chain, admin endpoint enabled) must leave non-zero phase
// histograms for the cloud's index walk and witness computation, the
// client's verification and the chain's settlement on /metrics — and the
// search output must be exactly what the un-instrumented pipeline returns.
func TestDistributedSearchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cloudSrv := wire.NewCloudServer()
	cloudSrv.SetObservability(reg, obs.Nop())
	cloudAddr, err := cloudSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	defer cloudSrv.Close()

	adm, err := obs.StartAdmin("127.0.0.1:0", reg, cloudSrv.Traces(), obs.Nop())
	if err != nil {
		t.Fatalf("StartAdmin: %v", err)
	}
	defer adm.Close()

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		t.Fatal(err)
	}
	ownerAcct := chain.AddressFromString("owner")
	userAcct := chain.AddressFromString("user")
	cloudAcct := chain.AddressFromString("cloud")
	validators := []chain.Address{chain.AddressFromString("v0"), chain.AddressFromString("v1")}
	network, err := chain.NewNetwork(registry, validators, map[chain.Address]uint64{
		ownerAcct: 1 << 30, userAcct: 1 << 30, cloudAcct: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	chainSrv := wire.NewChainServer(network)
	chainSrv.SetObservability(reg, obs.Nop())
	chainAddr, err := chainSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("chain listen: %v", err)
	}
	defer chainSrv.Close()

	owner, err := core.NewOwner(core.Params{Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	db := []Record{NewRecord(1, 10), NewRecord(2, 200), NewRecord(3, 30)}
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	cloudCli, err := wire.DialCloud(cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cloudCli.Close()
	if err := cloudCli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("cloud init: %v", err)
	}
	chainCli, err := wire.DialChain(chainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer chainCli.Close()
	deployRc, err := chainCli.Mine(contract.DeployTx(ownerAcct, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 50_000_000))
	if err != nil || !deployRc.Status {
		t.Fatalf("contract deploy: %v %s", err, deployRc.Err)
	}

	// Fair-exchange search: escrow, remote search, submit, verify locally.
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	req, err := user.Token(Less(100))
	if err != nil {
		t.Fatal(err)
	}
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	reqID := chain.HashBytes([]byte("req-0"))
	nonce, err := chainCli.Nonce(userAcct)
	if err != nil {
		t.Fatal(err)
	}
	if rc, err := chainCli.Mine(&chain.Transaction{
		From: userAcct, To: deployRc.ContractAddress, Nonce: nonce, Value: 1000,
		GasLimit: 1_000_000, Data: contract.RequestData(reqID, cloudAcct, th),
	}); err != nil || !rc.Status {
		t.Fatalf("escrow: %v %s", err, rc.Err)
	}
	resp, err := cloudCli.Search(req)
	if err != nil {
		t.Fatalf("remote search: %v", err)
	}
	verifyDur := reg.Histogram(obs.Label("slicer_pipeline_seconds", "phase", "verify"), "")
	if err := core.VerifyResponseObserved(owner.AccumulatorPub(), owner.Ac(), req, resp, verifyDur, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
	submit, err := contract.SubmitData(reqID, owner.AccumulatorPub().Marshal(), owner.Ac(), resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err = chainCli.Nonce(cloudAcct)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := chainCli.Mine(&chain.Transaction{
		From: cloudAcct, To: deployRc.ContractAddress, Nonce: nonce,
		GasLimit: 50_000_000, Data: submit,
	})
	if err != nil || !rc.Status {
		t.Fatalf("submit: %v %s", err, rc.Err)
	}
	if len(rc.ReturnData) != 1 || rc.ReturnData[0] != 1 {
		t.Fatal("on-chain verification did not settle")
	}
	ids, err := user.Decrypt(resp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(ids), fmt.Sprint([]uint64{1, 3}); got != want {
		t.Fatalf("search ids = %s, want %s", got, want)
	}

	// Scrape /metrics over HTTP and assert the phase histograms moved.
	res, err := http.Get("http://" + adm.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, series := range []string{
		`slicer_cloud_phase_seconds_count{phase="collect"}`,
		`slicer_cloud_phase_seconds_count{phase="witness"}`,
		`slicer_pipeline_seconds_count{phase="verify"}`,
		`slicer_chain_phase_seconds_count{phase="seal"}`,
		`slicer_rpc_requests_total{method="cloud.search",outcome="ok",server="cloud"}`,
	} {
		val, ok := seriesValue(exposition, series)
		if !ok {
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		if val == "0" {
			t.Errorf("series %s is zero after a full search", series)
		}
	}
}

// TestSchemeObservability checks the single-process pipeline: SearchTraced
// returns the same IDs as Search, records every pipeline phase in the
// trace, and feeds the phase histograms of the attached registry. Results
// must be identical with observability on, off, and detached.
func TestSchemeObservability(t *testing.T) {
	s, err := NewScheme(Params{Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512},
		[]Record{NewRecord(1, 5), NewRecord(2, 50), NewRecord(3, 7)})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Search(Less(10))
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetricsRegistry()
	s.SetObservability(reg)
	ids, tr, err := s.SearchTraced(Less(10))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(ids), fmt.Sprint(plain); got != want {
		t.Fatalf("instrumented search ids = %s, want %s", got, want)
	}
	phases := make(map[string]bool)
	for _, sp := range tr.Spans() {
		phases[sp.Phase] = true
	}
	for _, want := range []string{"token", "cloud_search", "verify", "decrypt", "cloud.collect", "cloud.witness"} {
		if !phases[want] {
			t.Errorf("trace missing phase %q (got %v)", want, tr.Spans())
		}
	}
	if v := reg.Snapshot()["slicer_searches_total"]; v != 1 {
		t.Errorf("slicer_searches_total = %v, want 1", v)
	}
	if v := reg.Snapshot()[`slicer_pipeline_seconds{phase="verify"}/count`]; v != 1 {
		t.Errorf("verify histogram count = %v, want 1", v)
	}

	// Detaching restores the un-instrumented pipeline.
	s.SetObservability(nil)
	ids, err = s.Search(Less(10))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(ids), fmt.Sprint(plain); got != want {
		t.Fatalf("detached search ids = %s, want %s", got, want)
	}
}

// TestDistributedTracePropagation is the end-to-end acceptance check for
// cross-process tracing: one traced fair-exchange search over loopback RPC
// must yield a single merged trace holding the client's pipeline phases,
// the cloud's collect/witness spans (party "cloud", non-zero), the chain's
// seal span (party "chain", non-zero) and a derived wire-time span — and
// the same trace, keyed by the client's trace ID, must be retrievable from
// the cloud server's /debug/traces endpoint. A context-free peer on the
// same connection must keep getting PR-2-identical responses.
func TestDistributedTracePropagation(t *testing.T) {
	reg := obs.NewRegistry()
	cloudSrv := wire.NewCloudServer()
	cloudSrv.SetObservability(reg, obs.Nop())
	cloudAddr, err := cloudSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	defer cloudSrv.Close()
	adm, err := obs.StartAdmin("127.0.0.1:0", reg, cloudSrv.Traces(), obs.Nop())
	if err != nil {
		t.Fatalf("StartAdmin: %v", err)
	}
	defer adm.Close()

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		t.Fatal(err)
	}
	ownerAcct := chain.AddressFromString("owner")
	userAcct := chain.AddressFromString("user")
	cloudAcct := chain.AddressFromString("cloud")
	network, err := chain.NewNetwork(registry,
		[]chain.Address{chain.AddressFromString("v0")},
		map[chain.Address]uint64{ownerAcct: 1 << 30, userAcct: 1 << 30, cloudAcct: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	chainSrv := wire.NewChainServer(network)
	chainSrv.SetObservability(reg, obs.Nop())
	chainAddr, err := chainSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("chain listen: %v", err)
	}
	defer chainSrv.Close()

	owner, err := core.NewOwner(core.Params{Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	built, err := owner.Build([]Record{NewRecord(1, 10), NewRecord(2, 200), NewRecord(3, 30)})
	if err != nil {
		t.Fatal(err)
	}
	cloudCli, err := wire.DialCloud(cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cloudCli.Close()
	if err := cloudCli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("cloud init: %v", err)
	}
	chainCli, err := wire.DialChain(chainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer chainCli.Close()
	deployRc, err := chainCli.Mine(contract.DeployTx(ownerAcct, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 50_000_000))
	if err != nil || !deployRc.Status {
		t.Fatalf("contract deploy: %v %s", err, deployRc.Err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}

	// The traced fair-exchange search: every RPC carries the trace context
	// and splices the remote span tree into tr.
	tr := obs.NewTrace("traced fair-exchange search")
	endToken := tr.Span("token")
	req, err := user.Token(Less(100))
	if err != nil {
		t.Fatal(err)
	}
	endToken()
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	reqID := chain.HashBytes([]byte("traced-req"))
	nonce, err := chainCli.Nonce(userAcct)
	if err != nil {
		t.Fatal(err)
	}
	endEscrow := tr.Span("escrow")
	if rc, err := chainCli.MineTraced(&chain.Transaction{
		From: userAcct, To: deployRc.ContractAddress, Nonce: nonce, Value: 1000,
		GasLimit: 1_000_000, Data: contract.RequestData(reqID, cloudAcct, th),
	}, tr); err != nil || !rc.Status {
		t.Fatalf("escrow: %v %s", err, rc.Err)
	}
	endEscrow()
	endSearch := tr.Span("cloud_search")
	resp, err := cloudCli.SearchTraced(req, tr)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	endSearch()
	submit, err := contract.SubmitData(reqID, owner.AccumulatorPub().Marshal(), owner.Ac(), resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err = chainCli.Nonce(cloudAcct)
	if err != nil {
		t.Fatal(err)
	}
	endSettle := tr.Span("settle")
	if rc, err := chainCli.MineTraced(&chain.Transaction{
		From: cloudAcct, To: deployRc.ContractAddress, Nonce: nonce,
		GasLimit: 50_000_000, Data: submit,
	}, tr); err != nil || !rc.Status {
		t.Fatalf("submit: %v %s", err, rc.Err)
	}
	endSettle()
	endDecrypt := tr.Span("decrypt")
	ids, err := user.Decrypt(resp)
	if err != nil {
		t.Fatal(err)
	}
	endDecrypt()

	// One merged tree: local pipeline phases plus remote spans, attributed
	// to the party that measured them, with non-zero remote durations.
	byPhase := make(map[string]obs.SpanRecord)
	for _, sp := range tr.Spans() {
		byPhase[sp.Phase] = sp
	}
	for _, localPhase := range []string{"token", "escrow", "cloud_search", "settle", "decrypt"} {
		sp, ok := byPhase[localPhase]
		if !ok || sp.Party != "" {
			t.Errorf("local phase %q = %+v (present %v)", localPhase, sp, ok)
		}
	}
	for phase, party := range map[string]string{
		"cloud.collect": "cloud", "cloud.witness": "cloud",
		"chain.submit": "chain", "chain.seal": "chain",
	} {
		sp, ok := byPhase[phase]
		if !ok {
			t.Errorf("remote phase %q missing from merged trace (got %v)", phase, tr.Spans())
			continue
		}
		if sp.Party != party {
			t.Errorf("phase %q party = %q, want %q", phase, sp.Party, party)
		}
		if sp.Duration <= 0 {
			t.Errorf("phase %q duration = %v, want > 0", phase, sp.Duration)
		}
	}
	for _, derived := range []string{"rpc:cloud.search", "wire:cloud.search", "wire:chain.step"} {
		if _, ok := byPhase[derived]; !ok {
			t.Errorf("derived span %q missing from merged trace", derived)
		}
	}
	if sp := byPhase["wire:cloud.search"]; sp.Duration < 0 {
		t.Errorf("wire time = %v, want >= 0", sp.Duration)
	}

	// The cloud kept its half of the trace under the client's trace ID,
	// retrievable over the admin endpoint.
	if got := cloudSrv.Traces().Seen(); got != 1 {
		t.Errorf("cloud trace store saw %d traces, want 1", got)
	}
	res, err := http.Get("http://" + adm.Addr() + "/debug/traces")
	if err != nil {
		t.Fatalf("scrape traces: %v", err)
	}
	listing, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(string(listing), tr.ID()) {
		t.Errorf("/debug/traces = %d, missing trace %s:\n%s", res.StatusCode, tr.ID(), listing)
	}
	res, err = http.Get("http://" + adm.Addr() + "/debug/traces?id=" + tr.ID())
	if err != nil {
		t.Fatalf("fetch trace: %v", err)
	}
	rendered, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(string(rendered), "cloud.collect") {
		t.Errorf("/debug/traces?id = %d %q", res.StatusCode, rendered)
	}

	// A context-free search on the same connections still interoperates and
	// returns the same result — and records nothing server-side.
	plainResp, err := cloudCli.Search(req)
	if err != nil {
		t.Fatalf("context-free search: %v", err)
	}
	plainIDs, err := user.Decrypt(plainResp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(plainIDs), fmt.Sprint(ids); got != want {
		t.Fatalf("context-free ids = %s, want %s", got, want)
	}
	if got := cloudSrv.Traces().Seen(); got != 1 {
		t.Errorf("context-free search recorded a trace (seen = %d, want 1)", got)
	}
}

// seriesValue extracts one sample's value from a text exposition.
func seriesValue(exposition, series string) (string, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest, true
		}
	}
	return "", false
}
