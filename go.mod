module slicer

go 1.22
