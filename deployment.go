package slicer

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"

	"slicer/internal/audit"
	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/obs"
)

// Re-exported chain types used by the on-chain API.
type (
	// Address is a blockchain account address.
	Address = chain.Address
	// TxHash is a chain hash.
	TxHash = chain.Hash
	// Receipt records a mined transaction's outcome (incl. gas used).
	Receipt = chain.Receipt
)

// AddressFromString derives a deterministic demo account address.
var AddressFromString = chain.AddressFromString

// DeploymentConfig configures an on-chain deployment.
type DeploymentConfig struct {
	// Params are the scheme parameters.
	Params Params
	// Validators is the PoA validator set (names are fine; addresses are
	// derived). Defaults to three validators.
	Validators []string
	// InitialBalance pre-funds the owner, user and cloud accounts.
	// Defaults to 1e12.
	InitialBalance uint64
}

// SearchOutcome reports a fair-exchange search: the verified record IDs (nil
// when verification failed and the payment was refunded), whether the
// payment settled, and the gas the verification consumed.
type SearchOutcome struct {
	IDs       []uint64
	Settled   bool
	GasUsed   uint64
	RequestID TxHash
}

// Deployment is a full Slicer system: owner, user, cloud, a PoA blockchain
// network and the deployed verification/escrow contract.
type Deployment struct {
	owner *core.Owner
	user  *core.User
	cloud *core.Cloud

	network      *chain.Network
	contractAddr Address
	deployGas    uint64
	validators   []Address
	lastAcTx     TxHash // latest SetAc (or deployment) transaction

	// Demo accounts.
	OwnerAddr Address
	UserAddr  Address
	CloudAddr Address

	// tamper, when set, mutates cloud responses before submission —
	// used by examples and tests to demonstrate the refund path.
	tamper func(*SearchResponse)

	met deployMetrics

	// aud, when set, journals every fair-exchange event; on a refund the
	// full evidence bundle (tokens, raw response, accumulation value,
	// receipt) is captured atomically with the record.
	aud       *audit.Ledger
	audTenant string
}

// deployMetrics are the fair-exchange instruments. The zero value is the
// disabled state — every instrument is nil-safe.
type deployMetrics struct {
	searches *obs.Counter
	settled  *obs.Counter
	refunded *obs.Counter
	gas      *obs.Counter
	escrow   *obs.Histogram
	search   *obs.Histogram
	settle   *obs.Histogram
	decrypt  *obs.Histogram
}

// SetObservability attaches a metrics registry to the deployment: the
// fair-exchange flow records per-phase latency histograms (escrow mining,
// cloud search, on-chain settlement, decryption), settlement outcomes and
// verification gas; the in-process cloud records its own phase histograms
// into the same registry. A nil registry detaches. Observability never
// changes any protocol output.
func (d *Deployment) SetObservability(reg *obs.Registry) {
	d.cloud.SetMetrics(reg)
	if reg == nil {
		d.met = deployMetrics{}
		return
	}
	const phaseHelp = "Latency of one fair-exchange phase, by phase."
	d.met = deployMetrics{
		searches: reg.Counter("slicer_fairexchange_searches_total", "Fair-exchange searches run."),
		settled:  reg.Counter("slicer_fairexchange_settled_total", "Searches whose payment settled to the cloud."),
		refunded: reg.Counter("slicer_fairexchange_refunded_total", "Searches refunded after failed on-chain verification."),
		gas:      reg.Counter("slicer_fairexchange_gas_total", "Gas consumed by result-submission transactions (on-chain verification)."),
		escrow:   reg.Histogram(obs.Label("slicer_fairexchange_seconds", "phase", "escrow"), phaseHelp),
		search:   reg.Histogram(obs.Label("slicer_fairexchange_seconds", "phase", "cloud_search"), phaseHelp),
		settle:   reg.Histogram(obs.Label("slicer_fairexchange_seconds", "phase", "settle"), phaseHelp),
		decrypt:  reg.Histogram(obs.Label("slicer_fairexchange_seconds", "phase", "decrypt"), phaseHelp),
	}
}

// AttachAudit journals the deployment's fair-exchange events — searches
// issued, settlements, refunds with evidence, index updates — into led,
// stamped with tenant. A nil ledger detaches. Auditing never changes any
// protocol output: appends on the search path are best-effort, but a refund's
// evidence bundle is forced durable before the outcome returns.
func (d *Deployment) AttachAudit(led *audit.Ledger, tenant string) {
	d.aud = led
	d.audTenant = tenant
}

// Audit returns the attached audit ledger (nil when auditing is off).
func (d *Deployment) Audit() *audit.Ledger { return d.aud }

// NewDeployment builds the database, boots the blockchain network and
// deploys the contract.
func NewDeployment(cfg DeploymentConfig, db []Record) (*Deployment, error) {
	owner, err := core.NewOwner(cfg.Params)
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}

	d := &Deployment{
		owner:     owner,
		user:      user,
		cloud:     cloud,
		OwnerAddr: chain.AddressFromString("slicer-owner"),
		UserAddr:  chain.AddressFromString("slicer-user"),
		CloudAddr: chain.AddressFromString("slicer-cloud"),
	}

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		return nil, err
	}
	names := cfg.Validators
	if len(names) == 0 {
		names = []string{"validator-0", "validator-1", "validator-2"}
	}
	validators := make([]Address, len(names))
	for i, n := range names {
		validators[i] = chain.AddressFromString(n)
	}
	d.validators = validators
	balance := cfg.InitialBalance
	if balance == 0 {
		balance = 1_000_000_000_000
	}
	d.network, err = chain.NewNetwork(registry, validators, map[Address]uint64{
		d.OwnerAddr: balance,
		d.UserAddr:  balance,
		d.CloudAddr: balance,
	})
	if err != nil {
		return nil, err
	}

	deployTx := contract.DeployTx(d.OwnerAddr, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 10_000_000)
	r, err := d.mine(deployTx)
	if err != nil {
		return nil, err
	}
	if !r.Status {
		return nil, fmt.Errorf("slicer: contract deployment reverted: %s", r.Err)
	}
	d.contractAddr = r.ContractAddress
	d.deployGas = r.GasUsed
	return d, nil
}

// Owner / User / Cloud / ContractAddress expose deployment internals.
func (d *Deployment) Owner() *core.Owner       { return d.owner }
func (d *Deployment) User() *core.User         { return d.user }
func (d *Deployment) Cloud() *core.Cloud       { return d.cloud }
func (d *Deployment) ContractAddress() Address { return d.contractAddr }
func (d *Deployment) Network() *chain.Network  { return d.network }
func (d *Deployment) Balance(a Address) uint64 { return d.network.Leader().Balance(a) }
func (d *Deployment) BlockHeight() uint64      { return d.network.Leader().Height() }

// DeployGas reports the gas the contract deployment consumed (Table II row 1).
func (d *Deployment) DeployGas() uint64 { return d.deployGas }

// mine submits a transaction to every node, seals the next block and
// returns the receipt.
func (d *Deployment) mine(tx *chain.Transaction) (*Receipt, error) {
	return d.mineTraced(tx, nil)
}

// mineTraced is mine with the chain's admission and sealing phases recorded
// into an optional trace — the same span names a remote chain server
// reports, so in-process and distributed traces read alike.
func (d *Deployment) mineTraced(tx *chain.Transaction, tr *obs.Trace) (*Receipt, error) {
	endSubmit := tr.Span("chain.submit")
	if err := d.network.SubmitTx(tx); err != nil {
		return nil, err
	}
	endSubmit()
	endSeal := tr.Span("chain.seal")
	if _, err := d.network.Step(); err != nil {
		return nil, err
	}
	endSeal()
	r, ok := d.network.Leader().Receipt(tx.Hash())
	if !ok {
		return nil, fmt.Errorf("slicer: receipt missing for %s", tx.Hash())
	}
	return r, nil
}

func (d *Deployment) nonce(a Address) uint64 {
	return d.network.Leader().NextNonce(a)
}

// Insert adds records and refreshes the on-chain Ac digest, returning the
// receipt of the SetAc transaction (its gas is Table II's "data insertion").
func (d *Deployment) Insert(records []Record) (*Receipt, error) {
	out, err := d.owner.Insert(records)
	if err != nil {
		return nil, err
	}
	if err := d.cloud.ApplyUpdate(out); err != nil {
		return nil, err
	}
	d.user.UpdateStates(d.owner.StatesSnapshot())
	tx := &chain.Transaction{
		From:     d.OwnerAddr,
		To:       d.contractAddr,
		Nonce:    d.nonce(d.OwnerAddr),
		GasLimit: 1_000_000,
		Data:     contract.SetAcData(d.owner.Ac()),
	}
	r, err := d.mine(tx)
	if err != nil {
		return nil, err
	}
	if !r.Status {
		return nil, fmt.Errorf("slicer: SetAc reverted: %s", r.Err)
	}
	d.lastAcTx = tx.Hash()
	txh := tx.Hash()
	d.aud.Log(audit.Event{
		Kind:   audit.KindUpdate,
		Tenant: d.audTenant,
		Detail: fmt.Sprintf("+%d records, SetAc tx %x… gas %d", len(records), txh[:8], r.GasUsed),
	})
	return r, nil
}

// AcUpdateCount reads the contract's monotone AcUpdated counter. A data
// user records the count it last synchronized its trapdoor states against;
// a larger on-chain value means newer data exists and T must be refreshed —
// the user-side half of the freshness story (no owner participation
// needed).
func (d *Deployment) AcUpdateCount() (uint64, error) {
	ret, _, err := d.network.Leader().CallStatic(d.UserAddr, d.contractAddr,
		[]byte{contract.MethodGetAcDigest}, 1_000_000)
	if err != nil {
		return 0, fmt.Errorf("slicer: read Ac update count: %w", err)
	}
	if len(ret) != 40 {
		return 0, fmt.Errorf("slicer: malformed GetAcDigest return (%d bytes)", len(ret))
	}
	var count uint64
	for _, b := range ret[32:] {
		count = count<<8 | uint64(b)
	}
	return count, nil
}

// VerifyFreshness establishes data freshness the way a mutually distrusting
// data user would: it follows the header chain as a light client (verifying
// hash links and the PoA proposer schedule), checks the Merkle inclusion
// proof of the latest AcUpdated event, and compares the event's digest to
// the digest of the owner's current Ac. A nil return means the chain
// provably carries the newest accumulation value. Before any Insert the
// digest committed at deployment is checked via contract state instead.
func (d *Deployment) VerifyFreshness() error {
	node := d.network.Leader()
	wantDigest := chain.HashBytes(d.owner.Ac().Bytes())

	if d.lastAcTx == (TxHash{}) {
		// No SetAc yet: the digest lives in the constructor-initialized
		// storage; read it through a static call.
		ret, _, err := node.CallStatic(d.UserAddr, d.contractAddr,
			[]byte{contract.MethodGetAcDigest}, 1_000_000)
		if err != nil {
			return fmt.Errorf("slicer: read Ac digest: %w", err)
		}
		if len(ret) < 32 || chain.Hash(ret[:32]) != wantDigest {
			return fmt.Errorf("slicer: on-chain Ac digest is stale")
		}
		return nil
	}

	lc, err := chain.NewLightClient(node.BlockByNumber(0).Header, d.validators)
	if err != nil {
		return err
	}
	if err := lc.Sync(node); err != nil {
		return fmt.Errorf("slicer: light sync: %w", err)
	}
	proof, err := node.ProveReceiptByTx(d.lastAcTx)
	if err != nil {
		return fmt.Errorf("slicer: prove AcUpdated receipt: %w", err)
	}
	if err := lc.VerifyReceipt(proof); err != nil {
		return fmt.Errorf("slicer: receipt proof: %w", err)
	}
	log, ok := chain.FindLog(proof.Receipt, contract.TopicAcUpdated)
	if !ok {
		return fmt.Errorf("slicer: verified receipt lacks an AcUpdated event")
	}
	if len(log.Data) != 32 || chain.Hash(log.Data) != wantDigest {
		return fmt.Errorf("slicer: on-chain Ac digest is stale")
	}
	return nil
}

// SetCloudTamper installs (or clears, with nil) a response mutation applied
// before the cloud submits results — a hook for demonstrating the
// malicious-cloud refund path.
func (d *Deployment) SetCloudTamper(f func(*SearchResponse)) { d.tamper = f }

// VerifiedSearch runs the full fair-exchange flow of Fig. 1: the user
// escrows payment with the token list on chain, the cloud searches and
// submits results with proofs, the contract verifies and settles or
// refunds, and the user decrypts accepted results.
func (d *Deployment) VerifiedSearch(q Query, payment uint64) (*SearchOutcome, error) {
	req, err := d.user.Token(q)
	if err != nil {
		return nil, err
	}
	return d.verifiedRequest(req, payment, nil)
}

// VerifiedSearchTraced runs VerifiedSearch while recording a per-request
// span trace of every fair-exchange phase — token generation, escrow
// mining, the cloud's collect/witness work, on-chain settlement (the
// "chain.seal" span is the block execution that includes the contract's
// verification) and decryption. The trace is returned even when the search
// fails, so partial latency is still attributable.
func (d *Deployment) VerifiedSearchTraced(q Query, payment uint64) (*SearchOutcome, *SearchTrace, error) {
	tr := obs.NewTrace("fair-exchange search")
	endToken := tr.Span("token")
	req, err := d.user.Token(q)
	if err != nil {
		return nil, tr, err
	}
	endToken()
	out, err := d.verifiedRequest(req, payment, tr)
	return out, tr, err
}

// VerifiedRangeSearch runs the fair-exchange flow for an inclusive range
// via the prefix-cover index (requires Params.PrefixIndex): the whole range
// settles as one escrowed request.
func (d *Deployment) VerifiedRangeSearch(attr string, lo, hi uint64, payment uint64) (*SearchOutcome, error) {
	req, err := d.user.RangeTokens(attr, lo, hi)
	if err != nil {
		return nil, err
	}
	return d.verifiedRequest(req, payment, nil)
}

func (d *Deployment) verifiedRequest(req *SearchRequest, payment uint64, tr *obs.Trace) (*SearchOutcome, error) {
	d.met.searches.Inc()
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		return nil, err
	}
	var reqID TxHash
	if _, err := rand.Read(reqID[:]); err != nil {
		return nil, fmt.Errorf("slicer: sample request id: %w", err)
	}

	endEscrow := obs.StartPhase(d.met.escrow, tr, "escrow")
	r, err := d.mineTraced(&chain.Transaction{
		From:     d.UserAddr,
		To:       d.contractAddr,
		Nonce:    d.nonce(d.UserAddr),
		Value:    payment,
		GasLimit: 1_000_000,
		Data:     contract.RequestData(reqID, d.CloudAddr, th),
	}, tr)
	if err != nil {
		return nil, err
	}
	if !r.Status {
		return nil, fmt.Errorf("slicer: search request reverted: %s", r.Err)
	}
	endEscrow()
	d.aud.Log(audit.Event{
		Kind:   audit.KindSearch,
		Tenant: d.audTenant,
		Detail: fmt.Sprintf("request %x…, %d tokens, %d escrowed", reqID[:8], len(req.Tokens), payment),
	})

	endSearch := obs.StartPhase(d.met.search, tr, "cloud_search")
	resp, err := d.cloud.SearchTraced(req, tr)
	if err != nil {
		return nil, err
	}
	endSearch()
	if d.tamper != nil {
		d.tamper(resp)
	}
	data, err := contract.SubmitData(reqID, d.owner.AccumulatorPub().Marshal(), d.owner.Ac(), resp.Results)
	if err != nil {
		return nil, err
	}
	endSettle := obs.StartPhase(d.met.settle, tr, "settle")
	subTx := &chain.Transaction{
		From:     d.CloudAddr,
		To:       d.contractAddr,
		Nonce:    d.nonce(d.CloudAddr),
		GasLimit: 50_000_000,
		Data:     data,
	}
	subTxHash := subTx.Hash()
	r, err = d.mineTraced(subTx, tr)
	if err != nil {
		return nil, err
	}
	if !r.Status {
		return nil, fmt.Errorf("slicer: result submission reverted: %s", r.Err)
	}
	endSettle()
	d.met.gas.Add(r.GasUsed)

	outcome := &SearchOutcome{RequestID: reqID, GasUsed: r.GasUsed}
	if len(r.ReturnData) == 1 && r.ReturnData[0] == 1 {
		d.met.settled.Inc()
		outcome.Settled = true
		d.aud.Log(audit.Event{
			Kind:   audit.KindSettle,
			Tenant: d.audTenant,
			Detail: fmt.Sprintf("request %x… settled, gas %d", reqID[:8], r.GasUsed),
		})
		endDecrypt := obs.StartPhase(d.met.decrypt, tr, "decrypt")
		ids, err := d.user.Decrypt(resp)
		if err != nil {
			return nil, err
		}
		endDecrypt()
		outcome.IDs = ids
	} else {
		d.met.refunded.Inc()
		d.auditRefund(reqID, subTxHash, req, resp, r)
	}
	return outcome, nil
}

// auditRefund journals a refund with its full evidence bundle: the tokens
// the contract judged against, the raw response exactly as submitted, the
// accumulation value and public parameters (so the proof check is replayable
// from the bundle alone) and the chain receipt. The public verification is
// re-run locally to attribute the failure to a phase and token index —
// linking the structured core.VerificationError to the forensic record. The
// ledger forces evidence durable before Append returns.
func (d *Deployment) auditRefund(reqID TxHash, txHash TxHash, req *SearchRequest, resp *SearchResponse, r *Receipt) {
	if d.aud == nil {
		return
	}
	ev := &audit.Evidence{
		Ac:         d.owner.Ac().Bytes(),
		AccPub:     d.owner.AccumulatorPub().Marshal(),
		TokenIndex: -1,
		RequestID:  reqID[:],
		TxHash:     txHash[:],
		GasUsed:    r.GasUsed,
		ReturnData: r.ReturnData,
	}
	if b, err := json.Marshal(req); err == nil {
		ev.Tokens = b
	}
	if b, err := json.Marshal(resp); err == nil {
		ev.Response = b
	}
	detail := fmt.Sprintf("request %x… refunded", reqID[:8])
	if err := core.VerifyResponse(d.owner.AccumulatorPub(), d.owner.Ac(), req, resp); err != nil {
		if ve, ok := core.AsVerificationError(err); ok {
			ev.Phase = ve.Phase
			ev.TokenIndex = ve.TokenIndex
		}
		detail += ": " + err.Error()
	}
	d.aud.Log(audit.Event{
		Kind:     audit.KindRefund,
		Outcome:  audit.OutcomeFail,
		Tenant:   d.audTenant,
		Detail:   detail,
		Evidence: ev,
	})
}

// ProbeFunc returns an audit.ProbeFunc running one synthetic fair-exchange
// search for q — the continuous-verification canary. A refund is a probe
// failure (the refund's evidence bundle is journaled by the search itself,
// so the probe record carries only the verdict).
func (d *Deployment) ProbeFunc(q Query, payment uint64) audit.ProbeFunc {
	return func() (string, *audit.Evidence, error) {
		out, err := d.VerifiedSearch(q, payment)
		if err != nil {
			return "", nil, err
		}
		detail := fmt.Sprintf("%d ids, gas %d", len(out.IDs), out.GasUsed)
		if !out.Settled {
			return detail, nil, errors.New("on-chain verification failed: payment refunded")
		}
		return detail, nil, nil
	}
}

// RunProber starts a background prober issuing the synthetic search q every
// opts.Interval, journaling each outcome into the attached audit ledger.
// The returned stop function halts it.
func (d *Deployment) RunProber(q Query, payment uint64, opts audit.ProberOptions) (stop func()) {
	if opts.Tenant == "" {
		opts.Tenant = d.audTenant
	}
	return audit.NewProber(d.aud, d.ProbeFunc(q, payment), opts).Run()
}
