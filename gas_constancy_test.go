package slicer

import (
	"testing"

	"slicer/internal/workload"
)

// TestInsertionGasConstant pins the paper's headline gas property (Table
// II): the data-insertion transaction costs the same regardless of how many
// records the batch carries, because only a 32-byte digest of Ac reaches
// the chain. The only permitted variation is calldata byte pricing: EIP-2028
// charges zero bytes 4 gas and nonzero bytes 16, so a digest that happens to
// contain zero bytes costs up to 32*12 gas less — independent of batch size.
func TestInsertionGasConstant(t *testing.T) {
	db := workload.Generate(workload.Config{N: 50, Bits: 8, Seed: 61})
	d, err := NewDeployment(DeploymentConfig{Params: testParams(8)}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	// First SetAc pays the set-vs-reset difference; warm up once.
	if _, err := d.Insert([]Record{NewRecord(1001, 1)}); err != nil {
		t.Fatalf("warmup Insert: %v", err)
	}
	var gases []uint64
	nextID := uint64(2000)
	for _, batch := range []int{1, 10, 100} {
		records := workload.Generate(workload.Config{
			N: batch, Bits: 8, Seed: int64(batch), FirstID: nextID,
		})
		nextID += uint64(batch) + 1
		r, err := d.Insert(records)
		if err != nil {
			t.Fatalf("Insert(%d): %v", batch, err)
		}
		gases = append(gases, r.GasUsed)
	}
	lo, hi := gases[0], gases[0]
	for _, g := range gases[1:] {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	// 32 digest bytes * (16 - 4) gas: the worst-case all-zero vs no-zero
	// digest spread. Any batch-size dependence would exceed this immediately
	// (one extra record's calldata alone costs more).
	if hi-lo > 32*12 {
		t.Fatalf("insertion gas varies with batch size: %v", gases)
	}
}

// TestVerifiedRangeSearchOnChain settles a whole inclusive range as one
// escrowed request via the prefix-cover index.
func TestVerifiedRangeSearchOnChain(t *testing.T) {
	db := []Record{
		NewRecord(1, 30), NewRecord(2, 90), NewRecord(3, 120),
		NewRecord(4, 150), NewRecord(5, 250),
	}
	params := testParams(8)
	params.PrefixIndex = true
	d, err := NewDeployment(DeploymentConfig{Params: params}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	out, err := d.VerifiedRangeSearch("", 80, 160, 999)
	if err != nil {
		t.Fatalf("VerifiedRangeSearch: %v", err)
	}
	if !out.Settled || !equalU64(out.IDs, []uint64{2, 3, 4}) {
		t.Fatalf("outcome = %+v, want settled [2 3 4]", out)
	}
	// A tampering cloud on the range request gets refunded too.
	d.SetCloudTamper(func(resp *SearchResponse) {
		for i := range resp.Results {
			if len(resp.Results[i].ER) > 0 {
				resp.Results[i].ER = resp.Results[i].ER[1:]
				return
			}
		}
	})
	out, err = d.VerifiedRangeSearch("", 80, 160, 999)
	if err != nil {
		t.Fatalf("VerifiedRangeSearch (tampered): %v", err)
	}
	if out.Settled {
		t.Fatal("tampered range response settled")
	}
	// Without the prefix index the call reports a clear error.
	plain, err := NewDeployment(DeploymentConfig{Params: testParams(8)}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	if _, err := plain.VerifiedRangeSearch("", 80, 160, 999); err == nil {
		t.Error("range search without PrefixIndex accepted")
	}
}
