#!/usr/bin/env bash
# Sharded-tier smoke test: boot three slicer-cloud shards behind a
# slicer-router (all journaling to -data-dir) plus a chain, build state
# through slicer-cli as if the router were one cloud, then SIGKILL one
# shard and — while it is down — ask the router to move a range onto it.
# The move must stall, survive the shard restarting on its data
# directory, and complete; afterwards a fresh search must pass on-chain
# verification, which only holds if no index entry was lost or
# duplicated across the kill + move + restart.
#
# Expects slicer-cloud, slicer-router, slicer-chain and slicer-cli in
# $BIN (default /tmp), e.g.:
#
#	go build -o /tmp/slicer-cloud  ./cmd/slicer-cloud
#	go build -o /tmp/slicer-router ./cmd/slicer-router
#	go build -o /tmp/slicer-chain  ./cmd/slicer-chain
#	go build -o /tmp/slicer-cli    ./cmd/slicer-cli
#	bash ci/shard_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp}
WORK=$(mktemp -d)
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

ROUTER_ADDR=127.0.0.1:7471
S1_ADDR=127.0.0.1:7472
S2_ADDR=127.0.0.1:7473
S3_ADDR=127.0.0.1:7474
CHAIN_ADDR=127.0.0.1:7475
CLI=("$BIN/slicer-cli")
# The router IS the cloud as far as the CLI is concerned.
COMMON=(-state "$WORK/state.json" -cloud "$ROUTER_ADDR" -chain "$CHAIN_ADDR")

port_free() {
	if (exec 3<>"/dev/tcp/${1%:*}/${1#*:}") 2>/dev/null; then
		echo "port $1 is already in use; refusing to run against a stale server" >&2
		return 1
	fi
	return 0
}

wait_port() { # pid host:port
	for _ in $(seq 1 100); do
		if ! kill -0 "$1" 2>/dev/null; then
			echo "server for $2 (pid $1) exited during startup" >&2
			return 1
		fi
		if (exec 3<>"/dev/tcp/${2%:*}/${2#*:}") 2>/dev/null; then
			exec 3>&- 3<&-
			return 0
		fi
		sleep 0.1
	done
	echo "server on $2 never came up" >&2
	return 1
}

start_shard() { # $1: id  $2: addr  $3: log suffix
	"$BIN/slicer-cloud" -listen "$2" -data-dir "$WORK/$1-data" \
		>"$WORK/$1-$3.log" 2>&1 &
	eval "${1^^}_PID=$!"
	PIDS+=("$!")
	wait_port "$!" "$2"
}

for p in "$ROUTER_ADDR" "$S1_ADDR" "$S2_ADDR" "$S3_ADDR" "$CHAIN_ADDR"; do
	port_free "$p"
done

echo "== boot chain, three shards, router =="
"$BIN/slicer-chain" -listen "$CHAIN_ADDR" -data-dir "$WORK/chain-data" \
	>"$WORK/chain.log" 2>&1 &
CHAIN_PID=$!
PIDS+=("$CHAIN_PID")
wait_port "$CHAIN_PID" "$CHAIN_ADDR"
start_shard s1 "$S1_ADDR" boot
start_shard s2 "$S2_ADDR" boot
start_shard s3 "$S3_ADDR" boot
"$BIN/slicer-router" -listen "$ROUTER_ADDR" -data-dir "$WORK/router-data" \
	-shards "s1=$S1_ADDR,s2=$S2_ADDR,s3=$S3_ADDR" \
	>"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_port "$ROUTER_PID" "$ROUTER_ADDR"

echo "== build state through the router =="
"${CLI[@]}" init "${COMMON[@]}" -bits 8 -values 1=7,2=9,3=7 \
	-trapdoor-bits 512 -accumulator-bits 512
"${CLI[@]}" insert "${COMMON[@]}" -values 4=7
"${CLI[@]}" status "${COMMON[@]}" | tee "$WORK/status.out"
grep -q 'router: table epoch' "$WORK/status.out"

echo "== pick a source arc and a destination shard =="
"${CLI[@]}" rebalance "${COMMON[@]}" -show | tee "$WORK/table.out"
# First arc line: "  <shard> [<lo>, <hi>)". Move it to a different shard.
ARC=$(grep -E '^\s+s[0-9]+\s+\[' "$WORK/table.out" | head -1)
SRC=$(echo "$ARC" | awk '{print $1}')
LO=$(echo "$ARC" | sed -E 's/.*\[([0-9a-fx]+),.*/\1/')
HI=$(echo "$ARC" | sed -E 's/.*, *([0-9a-fx^]+)\).*/\1/')
[ "$HI" = "2^64" ] && HI=0
for cand in s1 s2 s3; do
	if [ "$cand" != "$SRC" ]; then DST=$cand; break; fi
done
DST_ADDR_VAR="${DST^^}_ADDR"
DST_PID_VAR="${DST^^}_PID"
echo "moving $SRC arc [$LO, $HI) to $DST"

echo "== SIGKILL destination shard $DST, then start the move =="
kill -9 "${!DST_PID_VAR}"
wait "${!DST_PID_VAR}" 2>/dev/null || true
# The move's import pages retry against the dead shard; give the command
# no call deadline so the stalled move can outlive the default timeout.
"${CLI[@]}" rebalance "${COMMON[@]}" -call-timeout 0 \
	-lo "$LO" -hi "$HI" -to "$DST" >"$WORK/move.out" 2>&1 &
MOVE_PID=$!
sleep 2
if ! kill -0 "$MOVE_PID" 2>/dev/null; then
	echo "move finished while the destination was down:" >&2
	cat "$WORK/move.out" >&2
	exit 1
fi

echo "== restart $DST on its data directory; the move must complete =="
start_shard "$DST" "${!DST_ADDR_VAR}" recovered
grep -q 'recovered from' "$WORK/$DST-recovered.log"
wait "$MOVE_PID"
cat "$WORK/move.out"
grep -q "^moved .* to $DST:" "$WORK/move.out"

echo "== routing table advanced an epoch =="
"${CLI[@]}" rebalance "${COMMON[@]}" -show | tee "$WORK/table2.out"
grep -q 'epoch 1' "$WORK/table2.out"

echo "== fresh verified search settles on chain =="
"${CLI[@]}" search "${COMMON[@]}" -op '=' -value 7 | tee "$WORK/search.out"
grep -q 'on-chain verification passed' "$WORK/search.out"
grep -q 'matching record IDs: \[1 3 4\]' "$WORK/search.out"

echo "shard smoke: OK"
