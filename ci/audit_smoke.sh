#!/usr/bin/env bash
# Audit-ledger smoke test: boot a full deployment with tamper-evident
# auditing on (both servers journal to <data-dir>/audit, the client to its
# own ledger), drive the continuous verification prober, SIGKILL both
# servers while probes are mid-flight (no shutdown hook runs — appends are
# cut wherever the WAL happened to be), restart, and require every hash
# chain to re-verify from genesis: a torn tail is truncated as
# unacknowledged, never reported as tampering.
#
# Expects slicer-cloud, slicer-chain and slicer-cli binaries in $BIN
# (default /tmp), e.g.:
#
#	go build -o /tmp/slicer-cloud ./cmd/slicer-cloud
#	go build -o /tmp/slicer-chain ./cmd/slicer-chain
#	go build -o /tmp/slicer-cli   ./cmd/slicer-cli
#	bash ci/audit_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp}
WORK=$(mktemp -d)
trap 'kill "$CHAIN_PID" "$CLOUD_PID" "$PROBE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

CLOUD_ADDR=127.0.0.1:7471
CHAIN_ADDR=127.0.0.1:7472
CLI=("$BIN/slicer-cli")
COMMON=(-state "$WORK/state.json" -cloud "$CLOUD_ADDR" -chain "$CHAIN_ADDR" -tenant smoke)
CLI_LEDGER="$WORK/cli-audit"
PROBE_PID=""

port_free() { # host:port — a stale listener would absorb the whole test
	if (exec 3<>"/dev/tcp/${1%:*}/${1#*:}") 2>/dev/null; then
		echo "port $1 is already in use; refusing to run against a stale server" >&2
		return 1
	fi
	return 0
}

wait_port() { # pid host:port — fails fast if the server process died
	for _ in $(seq 1 100); do
		if ! kill -0 "$1" 2>/dev/null; then
			echo "server for $2 (pid $1) exited during startup" >&2
			return 1
		fi
		if (exec 3<>"/dev/tcp/${2%:*}/${2#*:}") 2>/dev/null; then
			exec 3>&- 3<&-
			return 0
		fi
		sleep 0.1
	done
	echo "server on $2 never came up" >&2
	return 1
}

start_servers() { # $1: log suffix — -data-dir turns auditing on by default
	"$BIN/slicer-chain" -listen "$CHAIN_ADDR" -data-dir "$WORK/chain-data" \
		>"$WORK/chain-$1.log" 2>&1 &
	CHAIN_PID=$!
	"$BIN/slicer-cloud" -listen "$CLOUD_ADDR" -data-dir "$WORK/cloud-data" \
		>"$WORK/cloud-$1.log" 2>&1 &
	CLOUD_PID=$!
	wait_port "$CHAIN_PID" "$CHAIN_ADDR"
	wait_port "$CLOUD_PID" "$CLOUD_ADDR"
	kill -0 "$CHAIN_PID" && kill -0 "$CLOUD_PID"
}

port_free "$CHAIN_ADDR"
port_free "$CLOUD_ADDR"

echo "== boot with auditing on + build state =="
start_servers boot
grep -q 'audit ledger .* chain verified' "$WORK/chain-boot.log"
grep -q 'audit ledger .* chain verified' "$WORK/cloud-boot.log"
"${CLI[@]}" init "${COMMON[@]}" -bits 8 -values 1=7,2=9,3=7 \
	-trapdoor-bits 512 -accumulator-bits 512
"${CLI[@]}" insert "${COMMON[@]}" -values 4=7

echo "== verification probe against the live deployment =="
"${CLI[@]}" probe "${COMMON[@]}" -op '=' -value 7 -count 2 -interval 0.1s \
	-audit-dir "$CLI_LEDGER" | tee "$WORK/probe.out"
grep -q 'probe #[0-9]* ok' "$WORK/probe.out"

echo "== SIGKILL both servers while probes are mid-flight =="
"${CLI[@]}" probe "${COMMON[@]}" -op '=' -value 7 -count 0 -interval 0.1s \
	-audit-dir "$CLI_LEDGER" >"$WORK/probe-bg.out" 2>&1 &
PROBE_PID=$!
sleep 1
kill -9 "$CHAIN_PID" "$CLOUD_PID"
wait "$CHAIN_PID" "$CLOUD_PID" 2>/dev/null || true
kill -9 "$PROBE_PID" 2>/dev/null || true
wait "$PROBE_PID" 2>/dev/null || true
PROBE_PID=""

echo "== restart: every ledger must re-verify its hash chain =="
start_servers recovered
grep -q 'audit ledger .* chain verified' "$WORK/chain-recovered.log"
grep -q 'audit ledger .* chain verified' "$WORK/cloud-recovered.log"

echo "== offline audit verify over all three ledgers =="
for dir in "$WORK/cloud-data/audit" "$WORK/chain-data/audit" "$CLI_LEDGER"; do
	"${CLI[@]}" audit verify -audit-dir "$dir" | tee "$WORK/verify.out"
	grep -q 'audit chain verified' "$WORK/verify.out"
done
# Land the tail in a file before grepping: grep -q exits on first match and
# would SIGPIPE the still-writing CLI under pipefail.
"${CLI[@]}" audit tail -audit-dir "$CLI_LEDGER" -n 3 >"$WORK/tail.out"
grep -q 'kind    probe' "$WORK/tail.out"

echo "== recovered deployment still settles a probed search =="
"${CLI[@]}" probe "${COMMON[@]}" -op '=' -value 7 -count 1 \
	-audit-dir "$CLI_LEDGER" | tee "$WORK/probe-final.out"
grep -q 'settled' "$WORK/probe-final.out"

echo "audit smoke: OK"
