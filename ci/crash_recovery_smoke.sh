#!/usr/bin/env bash
# Crash-recovery smoke test: boot a full deployment with both servers
# journaling to -data-dir, build state through slicer-cli, SIGKILL the
# servers (no shutdown hook runs — only the WAL survives), restart them
# on the same data directories, and require a fully verified search.
# The search settles on chain, so it passes only if the recovered cloud
# index still matches the accumulator digest the chain recovered.
#
# Expects slicer-cloud, slicer-chain and slicer-cli binaries in $BIN
# (default /tmp), e.g.:
#
#	go build -o /tmp/slicer-cloud ./cmd/slicer-cloud
#	go build -o /tmp/slicer-chain ./cmd/slicer-chain
#	go build -o /tmp/slicer-cli   ./cmd/slicer-cli
#	bash ci/crash_recovery_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp}
WORK=$(mktemp -d)
trap 'kill "$CHAIN_PID" "$CLOUD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

CLOUD_ADDR=127.0.0.1:7461
CHAIN_ADDR=127.0.0.1:7462
CLI=("$BIN/slicer-cli")
COMMON=(-state "$WORK/state.json" -cloud "$CLOUD_ADDR" -chain "$CHAIN_ADDR")

port_free() { # host:port — a stale listener would absorb the whole test
	if (exec 3<>"/dev/tcp/${1%:*}/${1#*:}") 2>/dev/null; then
		echo "port $1 is already in use; refusing to run against a stale server" >&2
		return 1
	fi
	return 0
}

wait_port() { # pid host:port — fails fast if the server process died
	for _ in $(seq 1 100); do
		if ! kill -0 "$1" 2>/dev/null; then
			echo "server for $2 (pid $1) exited during startup" >&2
			return 1
		fi
		if (exec 3<>"/dev/tcp/${2%:*}/${2#*:}") 2>/dev/null; then
			exec 3>&- 3<&-
			return 0
		fi
		sleep 0.1
	done
	echo "server on $2 never came up" >&2
	return 1
}

start_servers() { # $1: log suffix
	"$BIN/slicer-chain" -listen "$CHAIN_ADDR" -data-dir "$WORK/chain-data" \
		>"$WORK/chain-$1.log" 2>&1 &
	CHAIN_PID=$!
	"$BIN/slicer-cloud" -listen "$CLOUD_ADDR" -data-dir "$WORK/cloud-data" \
		>"$WORK/cloud-$1.log" 2>&1 &
	CLOUD_PID=$!
	wait_port "$CHAIN_PID" "$CHAIN_ADDR"
	wait_port "$CLOUD_PID" "$CLOUD_ADDR"
	# One more liveness check after both ports answered: a bind failure
	# exits after the listen socket of a third party answered the probe.
	kill -0 "$CHAIN_PID" && kill -0 "$CLOUD_PID"
}

port_free "$CHAIN_ADDR"
port_free "$CLOUD_ADDR"

echo "== boot + build state =="
start_servers boot
"${CLI[@]}" init "${COMMON[@]}" -bits 8 -values 1=7,2=9,3=7 \
	-trapdoor-bits 512 -accumulator-bits 512
"${CLI[@]}" insert "${COMMON[@]}" -values 4=7

echo "== SIGKILL both servers =="
kill -9 "$CHAIN_PID" "$CLOUD_PID"
wait "$CHAIN_PID" "$CLOUD_PID" 2>/dev/null || true

echo "== restart on the same data directories =="
start_servers recovered
grep -q 'recovered from' "$WORK/chain-recovered.log"
grep -q 'recovered from' "$WORK/cloud-recovered.log"

echo "== verified search against the recovered deployment =="
"${CLI[@]}" search "${COMMON[@]}" -op '=' -value 7 | tee "$WORK/search.out"
grep -q 'on-chain verification passed' "$WORK/search.out"
grep -q 'matching record IDs: \[1 3 4\]' "$WORK/search.out"

echo "crash-recovery smoke: OK"
