package slicer

import (
	"testing"
)

func TestTwinDeploymentFairExchange(t *testing.T) {
	db := []Record{
		NewRecord(1, 10), NewRecord(2, 20), NewRecord(3, 10), NewRecord(4, 90),
	}
	d, err := NewTwinDeployment(DeploymentConfig{Params: testParams(8)}, db)
	if err != nil {
		t.Fatalf("NewTwinDeployment: %v", err)
	}
	const fee = 1000
	cloudStart := d.Balance(d.CloudAddr)

	out, err := d.VerifiedSearch(Equal(10), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch: %v", err)
	}
	if !out.Settled || !equalU64(out.IDs, []uint64{1, 3}) {
		t.Fatalf("outcome = %+v, want settled [1 3]", out)
	}
	if got := d.Balance(d.CloudAddr); got != cloudStart+2*(fee/2) {
		t.Errorf("cloud balance %d, want %d", got, cloudStart+2*(fee/2))
	}

	// Delete on chain, then search again: the deleted record disappears
	// and both halves still verify.
	if err := d.Delete([]Record{NewRecord(1, 10)}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	out, err = d.VerifiedSearch(Equal(10), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch after delete: %v", err)
	}
	if !out.Settled || !equalU64(out.IDs, []uint64{3}) {
		t.Fatalf("post-delete outcome = %+v, want settled [3]", out)
	}

	// Update on chain.
	if err := d.Update(NewRecord(2, 20), NewRecord(5, 11)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	out, err = d.VerifiedSearch(Less(15), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch after update: %v", err)
	}
	if !out.Settled || !equalU64(out.IDs, []uint64{3, 5}) {
		t.Fatalf("post-update outcome = %+v, want settled [3 5]", out)
	}

	// Insert on chain.
	if err := d.Insert([]Record{NewRecord(6, 10)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	out, err = d.VerifiedSearch(Equal(10), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch after insert: %v", err)
	}
	if !out.Settled || !equalU64(out.IDs, []uint64{3, 6}) {
		t.Fatalf("post-insert outcome = %+v, want settled [3 6]", out)
	}

	if _, err := d.VerifiedSearch(Equal(10), 1); err == nil {
		t.Error("sub-minimum fee accepted")
	}
}
