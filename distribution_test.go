package slicer

import (
	"fmt"
	"testing"

	"slicer/internal/workload"
)

// TestDistributionsRoundTrip checks the full verified pipeline over skewed
// value distributions — zipf (heavy duplication of small values, stressing
// long per-keyword postings) and clustered (dense value neighbourhoods,
// stressing shared-prefix tuples) — against plaintext ground truth.
func TestDistributionsRoundTrip(t *testing.T) {
	for _, dist := range []workload.Distribution{workload.Zipf, workload.Clustered} {
		dist := dist
		t.Run(fmt.Sprint(dist), func(t *testing.T) {
			cfg := workload.Config{N: 150, Bits: 8, Dist: dist, Seed: 13}
			db := workload.Generate(cfg)
			scheme, err := NewScheme(testParams(8), db)
			if err != nil {
				t.Fatalf("NewScheme: %v", err)
			}
			for _, q := range workload.Queries(cfg, workload.Mixed, 15) {
				got, err := scheme.Search(q)
				if err != nil {
					t.Fatalf("Search(%v %d): %v", q.Op, q.Value, err)
				}
				want := workload.Answer(db, q)
				sortU64(want)
				if !equalU64(got, want) {
					t.Fatalf("%v: Search(%v %d) = %d ids, want %d",
						dist, q.Op, q.Value, len(got), len(want))
				}
			}
			// Value-heavy equality: a zipf mode can hit dozens of records.
			got, err := scheme.Search(Equal(db[0].Attrs[0].Value))
			if err != nil {
				t.Fatalf("Search: %v", err)
			}
			want := workload.Answer(db, Equal(db[0].Attrs[0].Value))
			sortU64(want)
			if !equalU64(got, want) {
				t.Fatalf("%v mode-value equality mismatch", dist)
			}
		})
	}
}
