package slicer

import (
	"testing"

	"slicer/internal/workload"
)

func prefixParams(bits int) Params {
	p := testParams(bits)
	p.PrefixIndex = true
	return p
}

func TestPrefixRangeSearchMatchesGroundTruth(t *testing.T) {
	db := workload.Generate(workload.Config{N: 150, Bits: 8, Seed: 41})
	scheme, err := NewScheme(prefixParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	ranges := []struct{ lo, hi uint64 }{
		{10, 200}, {0, 50}, {200, 255}, {0, 255}, {7, 7}, {0, 0}, {255, 255},
		{127, 128}, {1, 254},
	}
	for _, r := range ranges {
		got, err := scheme.RangeSearch("", r.lo, r.hi)
		if err != nil {
			t.Fatalf("RangeSearch(%d,%d): %v", r.lo, r.hi, err)
		}
		var want []uint64
		for _, rec := range db {
			v := rec.Attrs[0].Value
			if v >= r.lo && v <= r.hi {
				want = append(want, rec.ID)
			}
		}
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("prefix RangeSearch(%d,%d): got %d ids, want %d", r.lo, r.hi, len(got), len(want))
		}
	}
}

func TestPrefixAndIntersectionModesAgree(t *testing.T) {
	db := workload.Generate(workload.Config{N: 100, Bits: 8, Seed: 42})
	prefixScheme, err := NewScheme(prefixParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme(prefix): %v", err)
	}
	plainScheme, err := NewScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme(plain): %v", err)
	}
	for _, r := range []struct{ lo, hi uint64 }{{20, 220}, {0, 127}, {128, 255}} {
		a, err := prefixScheme.RangeSearch("", r.lo, r.hi)
		if err != nil {
			t.Fatalf("prefix mode: %v", err)
		}
		b, err := plainScheme.RangeSearch("", r.lo, r.hi)
		if err != nil {
			t.Fatalf("intersection mode: %v", err)
		}
		if !equalU64(a, b) {
			t.Fatalf("[%d,%d]: modes disagree (%d vs %d ids)", r.lo, r.hi, len(a), len(b))
		}
	}
}

func TestPrefixRangeAfterInsert(t *testing.T) {
	db := []Record{NewRecord(1, 100), NewRecord(2, 150)}
	scheme, err := NewScheme(prefixParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	if err := scheme.Insert([]Record{NewRecord(3, 120), NewRecord(4, 10)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := scheme.RangeSearch("", 90, 130)
	if err != nil {
		t.Fatalf("RangeSearch: %v", err)
	}
	if !equalU64(got, []uint64{1, 3}) {
		t.Fatalf("RangeSearch(90,130) after insert = %v, want [1 3]", got)
	}
}

func TestRangeTokensRequiresPrefixIndex(t *testing.T) {
	scheme, err := NewScheme(testParams(8), []Record{NewRecord(1, 5)})
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	if _, err := scheme.User().RangeTokens("", 0, 10); err == nil {
		t.Error("RangeTokens worked without PrefixIndex")
	}
}

// TestPrefixRangeTokenBudget checks the headline efficiency property: a
// narrow range in a large domain takes at most 2(b-1) tokens and fetches
// exactly the matching records (no over-fetch), unlike the intersection
// strategy which fetches both one-sided result sets.
func TestPrefixRangeTokenBudget(t *testing.T) {
	db := workload.Generate(workload.Config{N: 200, Bits: 16, Seed: 43})
	scheme, err := NewScheme(prefixParams(16), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	lo, hi := uint64(1000), uint64(1255)
	req, err := scheme.User().RangeTokens("", lo, hi)
	if err != nil {
		t.Fatalf("RangeTokens: %v", err)
	}
	if len(req.Tokens) > 2*15 {
		t.Errorf("cover used %d tokens, bound is %d", len(req.Tokens), 2*15)
	}
	resp, err := scheme.Cloud().Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	fetched := 0
	for _, res := range resp.Results {
		fetched += len(res.ER)
	}
	matching := 0
	for _, rec := range db {
		if v := rec.Attrs[0].Value; v >= lo && v <= hi {
			matching++
		}
	}
	if fetched != matching {
		t.Errorf("prefix mode fetched %d records for %d matches (should be exact)", fetched, matching)
	}
}
