package slicer

import (
	"math/rand"
	"testing"
)

// refModel is a plaintext reference implementation of the twin scheme's
// visible semantics: a map of live records.
type refModel struct {
	live    map[uint64]uint64 // id -> value
	deleted map[uint64]uint64
	nextID  uint64
}

func (m *refModel) answer(q Query) []uint64 {
	var out []uint64
	for id, v := range m.live {
		switch q.Op {
		case OpEqual:
			if v == q.Value {
				out = append(out, id)
			}
		case OpLess:
			if v < q.Value {
				out = append(out, id)
			}
		case OpGreater:
			if v > q.Value {
				out = append(out, id)
			}
		}
	}
	sortU64(out)
	return out
}

// TestModelBasedSoak drives a long random sequence of inserts, deletes,
// updates and verified searches against the twin scheme and cross-checks
// every search result against the plaintext reference model. Every response
// passes public verification inside TwinScheme.Search, so this doubles as a
// soak test of the proof machinery across many epochs.
func TestModelBasedSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const maxVal = 255

	model := &refModel{live: map[uint64]uint64{}, deleted: map[uint64]uint64{}, nextID: 1}
	var initial []Record
	for i := 0; i < 30; i++ {
		v := uint64(rng.Intn(maxVal + 1))
		initial = append(initial, NewRecord(model.nextID, v))
		model.live[model.nextID] = v
		model.nextID++
	}
	s, err := NewTwinScheme(testParams(8), initial)
	if err != nil {
		t.Fatalf("NewTwinScheme: %v", err)
	}

	randomLiveID := func() (uint64, bool) {
		if len(model.live) == 0 {
			return 0, false
		}
		ids := make([]uint64, 0, len(model.live))
		for id := range model.live {
			ids = append(ids, id)
		}
		return ids[rng.Intn(len(ids))], true
	}

	const steps = 120
	searches := 0
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // insert a small batch
			n := rng.Intn(3) + 1
			var batch []Record
			for i := 0; i < n; i++ {
				v := uint64(rng.Intn(maxVal + 1))
				batch = append(batch, NewRecord(model.nextID, v))
				model.live[model.nextID] = v
				model.nextID++
			}
			if err := s.Insert(batch); err != nil {
				t.Fatalf("step %d: Insert: %v", step, err)
			}
		case op == 3: // delete one live record
			id, ok := randomLiveID()
			if !ok {
				continue
			}
			v := model.live[id]
			if err := s.Delete([]Record{NewRecord(id, v)}); err != nil {
				t.Fatalf("step %d: Delete(%d): %v", step, id, err)
			}
			delete(model.live, id)
			model.deleted[id] = v
		case op == 4: // update one live record
			id, ok := randomLiveID()
			if !ok {
				continue
			}
			oldV := model.live[id]
			newV := uint64(rng.Intn(maxVal + 1))
			newID := model.nextID
			model.nextID++
			if err := s.Update(NewRecord(id, oldV), NewRecord(newID, newV)); err != nil {
				t.Fatalf("step %d: Update(%d->%d): %v", step, id, newID, err)
			}
			delete(model.live, id)
			model.deleted[id] = oldV
			model.live[newID] = newV
		default: // verified search
			searches++
			var q Query
			switch rng.Intn(3) {
			case 0:
				q = Equal(uint64(rng.Intn(maxVal + 1)))
			case 1:
				q = Less(uint64(rng.Intn(maxVal) + 1))
			default:
				q = Greater(uint64(rng.Intn(maxVal)))
			}
			got, err := s.Search(q)
			if err != nil {
				t.Fatalf("step %d: Search(%v %d): %v", step, q.Op, q.Value, err)
			}
			want := model.answer(q)
			if !equalU64(got, want) {
				t.Fatalf("step %d: Search(%v %d) = %v, model says %v",
					step, q.Op, q.Value, got, want)
			}
		}
	}
	if searches < steps/3 {
		t.Fatalf("only %d searches in %d steps; op mix skewed", searches, steps)
	}
	t.Logf("soak: %d steps, %d searches, %d live, %d deleted records",
		steps, searches, len(model.live), len(model.deleted))
}
