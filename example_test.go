package slicer_test

import (
	"fmt"
	"log"

	"slicer"
)

// Example demonstrates the basic verified-search workflow: build an
// encrypted index, run equality/order/range queries (each response carries
// accumulator proofs and is verified before decryption), and insert new
// records with forward security.
func Example() {
	db := []slicer.Record{
		slicer.NewRecord(1, 17),
		slicer.NewRecord(2, 42),
		slicer.NewRecord(3, 42),
		slicer.NewRecord(4, 99),
	}
	scheme, err := slicer.NewScheme(slicer.Params{
		Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256,
	}, db)
	if err != nil {
		log.Fatal(err)
	}

	ids, err := scheme.Search(slicer.Equal(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== 42:", ids)

	ids, err = scheme.Search(slicer.Less(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("<  42:", ids)

	ids, err = scheme.RangeSearch("", 40, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("40-100:", ids)

	if err := scheme.Insert([]slicer.Record{slicer.NewRecord(5, 42)}); err != nil {
		log.Fatal(err)
	}
	ids, err = scheme.Search(slicer.Equal(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after insert:", ids)

	// Output:
	// == 42: [2 3]
	// <  42: [1]
	// 40-100: [2 3 4]
	// after insert: [2 3 5]
}

// ExampleScheme_ConjunctiveSearch shows a multi-attribute AND query.
func ExampleScheme_ConjunctiveSearch() {
	db := []slicer.Record{
		{ID: 1, Attrs: []slicer.AttrValue{{Name: "age", Value: 34}, {Name: "hr", Value: 72}}},
		{ID: 2, Attrs: []slicer.AttrValue{{Name: "age", Value: 45}, {Name: "hr", Value: 110}}},
		{ID: 3, Attrs: []slicer.AttrValue{{Name: "age", Value: 70}, {Name: "hr", Value: 115}}},
	}
	scheme, err := slicer.NewScheme(slicer.Params{
		Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256,
	}, db)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := scheme.ConjunctiveSearch([]slicer.Condition{
		{Attr: "age", Lo: 30, Hi: 60},
		{Attr: "hr", Lo: 100, Hi: scheme.MaxValue()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [2]
}

// ExampleDeployment shows the on-chain fair exchange: the search fee is
// escrowed by the contract, verified on chain and settled to the cloud.
func ExampleDeployment() {
	db := []slicer.Record{slicer.NewRecord(1, 7), slicer.NewRecord(2, 99)}
	d, err := slicer.NewDeployment(slicer.DeploymentConfig{
		Params: slicer.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256},
	}, db)
	if err != nil {
		log.Fatal(err)
	}
	out, err := d.VerifiedSearch(slicer.Less(50), 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("settled:", out.Settled, "ids:", out.IDs)
	fmt.Println("freshness:", d.VerifyFreshness() == nil)
	// Output:
	// settled: true ids: [1]
	// freshness: true
}

// ExampleTwinScheme shows deletion and update via the twin-instance
// extension.
func ExampleTwinScheme() {
	db := []slicer.Record{slicer.NewRecord(1, 10), slicer.NewRecord(2, 10)}
	tw, err := slicer.NewTwinScheme(slicer.Params{
		Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256,
	}, db)
	if err != nil {
		log.Fatal(err)
	}
	if err := tw.Delete([]slicer.Record{slicer.NewRecord(1, 10)}); err != nil {
		log.Fatal(err)
	}
	ids, err := tw.Search(slicer.Equal(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [2]
}
