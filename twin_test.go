package slicer

import (
	"testing"

	"slicer/internal/workload"
)

func TestTwinSchemeLifecycle(t *testing.T) {
	db := []Record{
		NewRecord(1, 10), NewRecord(2, 20), NewRecord(3, 10), NewRecord(4, 90),
	}
	s, err := NewTwinScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewTwinScheme: %v", err)
	}

	got, err := s.Search(Equal(10))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !equalU64(got, []uint64{1, 3}) {
		t.Fatalf("Equal(10) = %v, want [1 3]", got)
	}

	if err := s.Delete([]Record{NewRecord(1, 10)}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got, err = s.Search(Equal(10))
	if err != nil {
		t.Fatalf("Search after delete: %v", err)
	}
	if !equalU64(got, []uint64{3}) {
		t.Fatalf("Equal(10) after delete = %v, want [3]", got)
	}

	if err := s.Insert([]Record{NewRecord(5, 10), NewRecord(6, 33)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err = s.Search(Less(30))
	if err != nil {
		t.Fatalf("Search after insert: %v", err)
	}
	if !equalU64(got, []uint64{2, 3, 5}) {
		t.Fatalf("Less(30) = %v, want [2 3 5]", got)
	}

	// Update: record 4 (90) becomes 25 under fresh ID 7.
	if err := s.Update(NewRecord(4, 90), NewRecord(7, 25)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err = s.Search(Less(30))
	if err != nil {
		t.Fatalf("Search after update: %v", err)
	}
	if !equalU64(got, []uint64{2, 3, 5, 7}) {
		t.Fatalf("Less(30) after update = %v, want [2 3 5 7]", got)
	}
	got, err = s.Search(Equal(90))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Equal(90) after update = %v, want empty", got)
	}

	// Guard rails.
	if err := s.Delete([]Record{NewRecord(1, 10)}); err == nil {
		t.Error("double delete accepted")
	}
	if err := s.Update(NewRecord(2, 20), NewRecord(2, 21)); err == nil {
		t.Error("update reusing the same ID accepted")
	}
}

func TestTwinSchemeRandomized(t *testing.T) {
	db := workload.Generate(workload.Config{N: 60, Bits: 8, Seed: 31})
	s, err := NewTwinScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewTwinScheme: %v", err)
	}
	// Delete every third record, then check several queries against the
	// plaintext ground truth over the live set.
	var deleted []Record
	live := make([]Record, 0, len(db))
	for i, rec := range db {
		if i%3 == 0 {
			deleted = append(deleted, rec)
		} else {
			live = append(live, rec)
		}
	}
	if err := s.Delete(deleted); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for _, q := range []Query{Equal(db[1].Attrs[0].Value), Less(100), Greater(200), Less(256 - 1)} {
		got, err := s.Search(q)
		if err != nil {
			t.Fatalf("Search(%v %d): %v", q.Op, q.Value, err)
		}
		want := workload.Answer(live, q)
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("Search(%v %d) = %d ids, want %d", q.Op, q.Value, len(got), len(want))
		}
	}
}
