// Benchmarks regenerating the paper's evaluation (one bench per table /
// figure, plus the ablation benches DESIGN.md calls out) at a fixed
// laptop-friendly size. The parameter sweeps behind the full figures are
// produced by cmd/slicer-bench; EXPERIMENTS.md maps each bench to its
// figure and records paper-vs-measured values.
package slicer_test

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"testing"

	"slicer/internal/accumulator"
	"slicer/internal/baseline"
	"slicer/internal/chain"
	"slicer/internal/core"
	"slicer/internal/hprime"
	"slicer/internal/prf"
	"slicer/internal/sore"
	"slicer/internal/workload"
)

const (
	benchRecords = 2000
	benchModBits = 512
)

func benchParams(bits int) core.Params {
	return core.Params{Bits: bits, TrapdoorBits: benchModBits, AccumulatorBits: benchModBits}
}

// benchEnv is a built deployment shared across benchmarks of one bit width.
type benchEnv struct {
	db    []core.Record
	owner *core.Owner
	user  *core.User
	cloud *core.Cloud // on-demand witnesses: honest Algorithm-4 VO cost
}

var (
	benchMu   sync.Mutex
	benchEnvs = map[int]*benchEnv{}
)

func getEnv(b *testing.B, bits int) *benchEnv {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if env, ok := benchEnvs[bits]; ok {
		return env
	}
	db := workload.Generate(workload.Config{N: benchRecords, Bits: bits, Seed: int64(bits)})
	owner, err := core.NewOwner(benchParams(bits))
	if err != nil {
		b.Fatalf("NewOwner: %v", err)
	}
	out, err := owner.Build(db)
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessOnDemand)
	if err != nil {
		b.Fatalf("NewCloud: %v", err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		b.Fatalf("NewUser: %v", err)
	}
	env := &benchEnv{db: db, owner: owner, user: user, cloud: cloud}
	benchEnvs[bits] = env
	return env
}

func bitSub(b *testing.B, f func(b *testing.B, bits int)) {
	for _, bits := range []int{8, 16} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) { f(b, bits) })
	}
}

// BenchmarkBuildIndex regenerates Fig. 3a (index building time) and reports
// Fig. 4a's index storage as a metric.
func BenchmarkBuildIndex(b *testing.B) {
	bitSub(b, func(b *testing.B, bits int) {
		db := workload.Generate(workload.Config{N: benchRecords, Bits: bits, Seed: int64(bits)})
		owner, err := core.NewOwner(benchParams(bits))
		if err != nil {
			b.Fatal(err)
		}
		var indexBytes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if i > 0 {
				owner, err = core.NewOwner(benchParams(bits))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			out, err := owner.Build(db)
			if err != nil {
				b.Fatal(err)
			}
			indexBytes = out.Index.Len() * 32
		}
		b.ReportMetric(float64(indexBytes), "index-bytes")
		b.ReportMetric(owner.LastStats().IndexDuration.Seconds(), "index-s")
		b.ReportMetric(owner.LastStats().ADSDuration.Seconds(), "ads-s")
	})
}

// BenchmarkBuildADS regenerates Fig. 3b in isolation: prime derivation and
// accumulation over the set hashes of a built database (Fig. 4b's ADS
// storage is reported as a metric).
func BenchmarkBuildADS(b *testing.B) {
	bitSub(b, func(b *testing.B, bits int) {
		env := getEnv(b, bits)
		primes := make([]*big.Int, env.cloud.PrimeCount())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Re-derive the same number of prime representatives and
			// accumulate them all — the ADS phase of Algorithm 1.
			for k := range primes {
				primes[k] = hprime.Hash([]byte(fmt.Sprintf("bench-ads-%d-%d", bits, k)))
			}
			env.owner.AccumulatorPub().Accumulate(primes)
		}
		b.ReportMetric(float64(env.cloud.ADSSizeBytes()), "ads-bytes")
	})
}

// BenchmarkSearchEquality regenerates Fig. 5a (equality result generation).
func BenchmarkSearchEquality(b *testing.B) {
	bitSub(b, func(b *testing.B, bits int) {
		env := getEnv(b, bits)
		req, err := env.user.Token(core.Equal(env.db[0].Attrs[0].Value))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.cloud.SearchResults(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVOEquality regenerates Fig. 5b (equality VO generation).
func BenchmarkVOEquality(b *testing.B) {
	bitSub(b, func(b *testing.B, bits int) {
		env := getEnv(b, bits)
		req, err := env.user.Token(core.Equal(env.db[0].Attrs[0].Value))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := env.cloud.SearchResults(req)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := env.cloud.AttachWitnesses(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearchOrder regenerates Fig. 5c (order result generation) and
// reports Fig. 6a/6c overheads as metrics.
func BenchmarkSearchOrder(b *testing.B) {
	bitSub(b, func(b *testing.B, bits int) {
		env := getEnv(b, bits)
		// 0b1010...10: roughly half the bits are set, so the order query
		// decomposes into multiple existing slices.
		v := (uint64(1)<<uint(bits) - 1) / 3 * 2
		req, err := env.user.Token(core.Less(v))
		if err != nil {
			b.Fatal(err)
		}
		var resultBytes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := env.cloud.SearchResults(req)
			if err != nil {
				b.Fatal(err)
			}
			resultBytes = 0
			for _, r := range resp.Results {
				resultBytes += len(r.ER) * 16
			}
		}
		b.ReportMetric(float64(len(req.Tokens)), "tokens")
		b.ReportMetric(float64(resultBytes), "result-bytes")
	})
}

// BenchmarkVOOrder regenerates Fig. 5d (order VO generation) and reports
// Fig. 6d's VO size as a metric.
func BenchmarkVOOrder(b *testing.B) {
	bitSub(b, func(b *testing.B, bits int) {
		env := getEnv(b, bits)
		// 0b1010...10: roughly half the bits are set, so the order query
		// decomposes into multiple existing slices.
		v := (uint64(1)<<uint(bits) - 1) / 3 * 2
		req, err := env.user.Token(core.Less(v))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := env.cloud.SearchResults(req)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := env.cloud.AttachWitnesses(resp); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		voBytes := 0
		for _, r := range resp.Results {
			voBytes += len(r.Witness)
		}
		b.ReportMetric(float64(voBytes), "vo-bytes")
	})
}

// BenchmarkSearchParallel is the serial-vs-parallel pipeline ablation: one
// full Algorithm-4 search (results + VO) at growing worker counts. Order
// queries fan their b independent tokens across the pool and scale with
// cores; equality queries carry a single token and pin the fan-out overhead
// floor. Responses are byte-identical at every worker count (see
// TestParallelSearchDeterminism), so the sub-benchmarks isolate pure
// scheduling. On a single-core host the ratios collapse to ~1x — the
// per-token modexp work only spreads when GOMAXPROCS > 1.
func BenchmarkSearchParallel(b *testing.B) {
	env := getEnv(b, 16)
	defer func() {
		if err := env.cloud.SetSearchWorkers(0); err != nil {
			b.Fatal(err)
		}
	}()
	queries := []struct {
		name string
		q    core.Query
	}{
		{"order", core.Less((uint64(1)<<16 - 1) / 3 * 2)},
		{"equality", core.Equal(env.db[0].Attrs[0].Value)},
	}
	for _, qc := range queries {
		req, err := env.user.Token(qc.q)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", qc.name, workers), func(b *testing.B) {
				if err := env.cloud.SetSearchWorkers(workers); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(req.Tokens)), "tokens")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := env.cloud.Search(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVerificationParallel is the verifier-side half of the parallel
// ablation: Algorithm 5 over a multi-token order response at growing worker
// counts.
func BenchmarkVerificationParallel(b *testing.B) {
	env := getEnv(b, 16)
	req, err := env.user.Token(core.Less((uint64(1)<<16 - 1) / 3 * 2))
	if err != nil {
		b.Fatal(err)
	}
	resp, err := env.cloud.Search(req)
	if err != nil {
		b.Fatal(err)
	}
	pp, ac := env.owner.AccumulatorPub(), env.owner.Ac()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := core.VerifyResponseWorkers(pp, ac, req, resp, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsertIndex / BenchmarkInsertADS regenerate Fig. 7: the index
// and ADS phases of a 100-record insert into a preloaded database.
func BenchmarkInsertIndex(b *testing.B) { benchInsert(b, false) }
func BenchmarkInsertADS(b *testing.B)   { benchInsert(b, true) }

func benchInsert(b *testing.B, ads bool) {
	bitSub(b, func(b *testing.B, bits int) {
		db := workload.Generate(workload.Config{N: benchRecords, Bits: bits, Seed: int64(bits)})
		owner, err := core.NewOwner(benchParams(bits))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := owner.Build(db); err != nil {
			b.Fatal(err)
		}
		nextID := uint64(benchRecords + 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch := workload.Generate(workload.Config{
				N: 100, Bits: bits, Seed: int64(i), FirstID: nextID,
			})
			nextID += 100
			b.StartTimer()
			if _, err := owner.Insert(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := owner.LastStats()
		if ads {
			b.ReportMetric(st.ADSDuration.Seconds(), "ads-s")
		} else {
			b.ReportMetric(st.IndexDuration.Seconds(), "index-s")
		}
	})
}

// BenchmarkVerification regenerates Table II's dominating operation: one
// result verification run (Algorithm 5) — the identical computation the
// smart contract meters; TestGasCosts in internal/contract and the table2
// experiment report the gas figures themselves.
func BenchmarkVerification(b *testing.B) {
	env := getEnv(b, 8)
	req, err := env.user.Token(core.Equal(env.db[0].Attrs[0].Value))
	if err != nil {
		b.Fatal(err)
	}
	resp, err := env.cloud.Search(req)
	if err != nil {
		b.Fatal(err)
	}
	pp, ac := env.owner.AccumulatorPub(), env.owner.Ac()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.VerifyResponse(pp, ac, req, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOREComparison is the SORE-vs-baselines ablation: one comparison
// under each scheme.
func BenchmarkOREComparison(b *testing.B) {
	key, err := prf.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SORE", func(b *testing.B) {
		s, err := sore.New(key, 16)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := s.Encrypt(12345)
		if err != nil {
			b.Fatal(err)
		}
		tk, err := s.Token(20000, sore.Greater)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !sore.Compare(ct, tk) {
				b.Fatal("comparison wrong")
			}
		}
	})
	b.Run("CLWW", func(b *testing.B) {
		c, err := baseline.NewCLWW(key, 16)
		if err != nil {
			b.Fatal(err)
		}
		ca, err := c.Encrypt(12345)
		if err != nil {
			b.Fatal(err)
		}
		cb, err := c.Encrypt(20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if baseline.Compare(ca, cb) != -1 {
				b.Fatal("comparison wrong")
			}
		}
	})
	b.Run("OPE", func(b *testing.B) {
		ope := baseline.NewOPE(1)
		ca, err := ope.Encrypt(12345)
		if err != nil {
			b.Fatal(err)
		}
		cb, err := ope.Encrypt(20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ope.Compare(ca, cb) != -1 {
				b.Fatal("comparison wrong")
			}
		}
	})
}

// BenchmarkRangeVsTraversal is the slicing ablation: a width-256 range
// answered with SORE order tokens vs per-value keyword traversal.
func BenchmarkRangeVsTraversal(b *testing.B) {
	env := getEnv(b, 16)
	maxV := uint64(1)<<16 - 1
	lo := maxV - 255
	b.Run("SORE", func(b *testing.B) {
		req, err := env.user.Token(core.Greater(lo - 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.cloud.SearchResults(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Traversal", func(b *testing.B) {
		trav := baseline.NewTraversal(env.user, env.cloud, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := trav.RangeSearch("", lo, maxV); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAccumulatorIncremental is the incremental-update ablation.
func BenchmarkAccumulatorIncremental(b *testing.B) {
	params, err := accumulator.Setup(benchModBits)
	if err != nil {
		b.Fatal(err)
	}
	primes := make([]*big.Int, 1024+64)
	for i := range primes {
		primes[i] = hprime.Hash([]byte(fmt.Sprintf("inc-%d", i)))
	}
	base, extra := primes[:1024], primes[1024:]
	ac := params.Public().Accumulate(base)
	b.Run("FullRecompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			params.Public().Accumulate(primes)
		}
	})
	b.Run("Incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			params.Public().Add(ac, extra)
		}
	})
	b.Run("OwnerFastPath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := params.AddFast(ac, extra); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWitnessGeneration is the RootFactor-vs-on-demand ablation.
func BenchmarkWitnessGeneration(b *testing.B) {
	params, err := accumulator.Setup(benchModBits)
	if err != nil {
		b.Fatal(err)
	}
	pp := params.Public()
	primes := make([]*big.Int, 1024)
	for i := range primes {
		primes[i] = hprime.Hash([]byte(fmt.Sprintf("wit-%d", i)))
	}
	b.Run("OnDemandOne", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pp.MemWit(primes, primes[512]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RootFactorAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pp.RootFactor(primes)
		}
	})
	b.Run("RootFactorParallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pp.RootFactorParallel(primes, runtime.GOMAXPROCS(0))
		}
	})
}

// BenchmarkVOvsMerkle is the constant-size-VO ablation: accumulator
// verification vs Merkle proof verification over the same committed set.
func BenchmarkVOvsMerkle(b *testing.B) {
	params, err := accumulator.Setup(benchModBits)
	if err != nil {
		b.Fatal(err)
	}
	pp := params.Public()
	primes := make([]*big.Int, 4096)
	leaves := make([]chain.Hash, len(primes))
	for i := range primes {
		primes[i] = hprime.Hash([]byte(fmt.Sprintf("vm-%d", i)))
		leaves[i] = chain.HashBytes(primes[i].Bytes())
	}
	ac, err := params.AccumulateFast(primes)
	if err != nil {
		b.Fatal(err)
	}
	wit, err := pp.MemWit(primes, primes[100])
	if err != nil {
		b.Fatal(err)
	}
	root := chain.MerkleRoot(leaves)
	proof, err := chain.ProveLeaf(leaves, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("AccumulatorVerify", func(b *testing.B) {
		b.ReportMetric(float64(pp.Size()), "proof-bytes")
		for i := 0; i < b.N; i++ {
			if !pp.VerifyMem(ac, primes[100], wit) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("MerkleVerify", func(b *testing.B) {
		b.ReportMetric(float64(len(proof.Siblings)*32), "proof-bytes")
		for i := 0; i < b.N; i++ {
			if !chain.VerifyLeaf(root, leaves[100], proof) {
				b.Fatal("verify failed")
			}
		}
	})
}
