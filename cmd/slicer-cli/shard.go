package main

import (
	"flag"
	"fmt"

	"slicer/internal/shard"
	"slicer/internal/wire"
)

// printShardStatus asks the cloud address for the router admin surface; when
// it answers (the "cloud" is a slicer-router), the aggregate line from
// cloud.stats is broken down per shard plus the routing-table epoch. A plain
// slicer-cloud rejects the router methods and the section is skipped.
func printShardStatus(addr string, opts wire.ClientOptions) {
	rc, err := shard.DialRouterOpts(addr, opts)
	if err != nil {
		return
	}
	defer rc.Close()
	info, err := rc.TableInfo()
	if err != nil {
		return // not a router
	}
	statuses, err := rc.Shards()
	if err != nil {
		fmt.Printf("  router: table epoch %d; shard listing failed: %v\n", info.Table.Epoch, err)
		return
	}
	fmt.Printf("  router: table epoch %d, %d segments, %d shards\n",
		info.Table.Epoch, len(info.Table.Segments), len(statuses))
	fmt.Printf("  %-8s %-22s %12s %14s %10s\n", "shard", "addr", "entries", "index bytes", "searches")
	for _, s := range statuses {
		if s.Err != "" {
			fmt.Printf("  %-8s %-22s unreachable: %s\n", s.ID, s.Addr, s.Err)
			continue
		}
		fmt.Printf("  %-8s %-22s %12d %14d %10d\n",
			s.ID, s.Addr, s.Stats.IndexEntries, s.Stats.IndexBytes, s.Stats.SearchCalls)
	}
}

// cmdRebalance drives a range move on a slicer-router:
//
//	slicer-cli rebalance -show             # list the table's arcs per shard
//	slicer-cli rebalance -lo 0 -hi 4611686018427387904 -to s2
//
// The range is [lo, hi) over the 64-bit address space of index-label
// prefixes; -hi 0 means 2^64. The range must currently live on one shard —
// move each arc separately.
func cmdRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ContinueOnError)
	statePath, _, _, _, dialOpts := commonFlags(fs)
	lo := fs.Uint64("lo", 0, "range start address (inclusive)")
	hi := fs.Uint64("hi", 0, "range end address (exclusive; 0 means 2^64)")
	to := fs.String("to", "", "destination shard ID")
	show := fs.Bool("show", false, "print the routing table's arcs per shard and exit")
	mkLogger := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := mkLogger(); err != nil {
		return err
	}
	st, err := loadState(*statePath)
	if err != nil {
		return err
	}
	rc, err := shard.DialRouterOpts(st.CloudAddr, dialOpts())
	if err != nil {
		return err
	}
	defer rc.Close()
	if *show {
		info, err := rc.TableInfo()
		if err != nil {
			return fmt.Errorf("fetch routing table (is %s a slicer-router?): %w", st.CloudAddr, err)
		}
		fmt.Printf("routing table epoch %d (%d segments)\n", info.Table.Epoch, len(info.Table.Segments))
		for _, id := range info.Table.Shards() {
			for _, rg := range info.Table.Ranges(id) {
				hiStr := fmt.Sprintf("%#018x", rg[1])
				if rg[1] == 0 {
					hiStr = "2^64              "
				}
				fmt.Printf("  %-8s [%#018x, %s)\n", id, rg[0], hiStr)
			}
		}
		return nil
	}
	if *to == "" {
		return fmt.Errorf("-to is required (destination shard ID); use -show to list arcs")
	}
	stats, err := rc.Rebalance(*lo, *hi, *to)
	if err != nil {
		return fmt.Errorf("rebalance (is %s a slicer-router?): %w", st.CloudAddr, err)
	}
	fmt.Printf("moved [%#x, %#x) from %s to %s: %d entries in %d pages, %d deleted at source, table epoch %d\n",
		*lo, *hi, stats.Source, *to, stats.Moved, stats.Pages, stats.Removed, stats.Epoch)
	return nil
}
