package main

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"log/slog"

	"slicer/internal/audit"
	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

// fairExchangeEnv bundles the dialed clients, key material and optional
// client-side audit ledger one fair-exchange search round needs — shared by
// `search` and the continuous `probe`.
type fairExchangeEnv struct {
	st     *cliState
	owner  *core.Owner
	user   *core.User
	cloud  *wire.CloudClient
	chain  *wire.ChainClient
	logger *slog.Logger
	led    *audit.Ledger // nil: no client-side journaling
	tenant string
}

// fairExchangeResult reports one fair-exchange search round.
type fairExchangeResult struct {
	ReqID     chain.Hash
	SubmitGas uint64
	Settled   bool
	IDs       []uint64
	// VerifyErr is the local re-run of the public verification after a
	// refund — it attributes the on-chain rejection to a phase and token
	// index. Nil when the round settled.
	VerifyErr error
}

// run executes the full fair-exchange flow — escrow, cloud search, result
// submission, on-chain verification, settle-or-refund — journaling
// search/settle/refund events into env.led (with the full evidence bundle
// on a refund).
func (env *fairExchangeEnv) run(req *core.SearchRequest, pay uint64, tr *obs.Trace) (*fairExchangeResult, error) {
	st := env.st
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		return nil, err
	}
	var reqID chain.Hash
	if _, err := rand.Read(reqID[:]); err != nil {
		return nil, err
	}
	nonce, err := env.chain.Nonce(st.UserAcct)
	if err != nil {
		return nil, err
	}
	endEscrow := tr.Span("escrow")
	rc, err := env.chain.MineTraced(&chain.Transaction{
		From: st.UserAcct, To: st.ContractAddr, Nonce: nonce, Value: pay,
		GasLimit: 1_000_000, Data: contract.RequestData(reqID, st.CloudAcct, th),
	}, tr)
	if err != nil {
		return nil, err
	}
	if !rc.Status {
		return nil, fmt.Errorf("escrow request reverted: %s", rc.Err)
	}
	endEscrow()
	env.logger.Debug("payment escrowed", "fee", pay, "gas", rc.GasUsed)
	env.led.Log(audit.Event{Kind: audit.KindSearch, Tenant: env.tenant,
		Detail: fmt.Sprintf("request %x…, %d tokens, %d escrowed", reqID[:8], len(req.Tokens), pay)})

	endSearch := tr.Span("cloud_search")
	resp, err := env.cloud.SearchTraced(req, tr)
	if err != nil {
		return nil, fmt.Errorf("cloud search: %w", err)
	}
	endSearch()
	env.logger.Debug("cloud answered", "tokens", len(resp.Results))

	submit, err := contract.SubmitData(reqID, env.owner.AccumulatorPub().Marshal(), env.owner.Ac(), resp.Results)
	if err != nil {
		return nil, err
	}
	nonce, err = env.chain.Nonce(st.CloudAcct)
	if err != nil {
		return nil, err
	}
	endSettle := tr.Span("settle")
	subTx := &chain.Transaction{
		From: st.CloudAcct, To: st.ContractAddr, Nonce: nonce,
		GasLimit: 50_000_000, Data: submit,
	}
	subTxHash := subTx.Hash()
	rc, err = env.chain.MineTraced(subTx, tr)
	if err != nil {
		return nil, err
	}
	if !rc.Status {
		return nil, fmt.Errorf("result submission reverted: %s", rc.Err)
	}
	endSettle()
	env.logger.Debug("results submitted", "gas", rc.GasUsed)

	res := &fairExchangeResult{ReqID: reqID, SubmitGas: rc.GasUsed}
	if len(rc.ReturnData) == 1 && rc.ReturnData[0] == 1 {
		res.Settled = true
		env.led.Log(audit.Event{Kind: audit.KindSettle, Tenant: env.tenant,
			Detail: fmt.Sprintf("request %x… settled, gas %d", reqID[:8], rc.GasUsed)})
		endDecrypt := tr.Span("decrypt")
		ids, err := env.user.Decrypt(resp)
		if err != nil {
			return nil, err
		}
		endDecrypt()
		res.IDs = ids
		return res, nil
	}

	// Refunded: re-run the public verification locally to attribute the
	// on-chain rejection, and journal the full evidence bundle — tokens,
	// the raw response exactly as submitted, the accumulation value it was
	// judged against and the chain receipt.
	res.VerifyErr = core.VerifyResponse(env.owner.AccumulatorPub(), env.owner.Ac(), req, resp)
	if env.led != nil {
		ev := &audit.Evidence{
			Ac:         env.owner.Ac().Bytes(),
			AccPub:     env.owner.AccumulatorPub().Marshal(),
			TokenIndex: -1,
			RequestID:  reqID[:],
			TxHash:     subTxHash[:],
			GasUsed:    rc.GasUsed,
			ReturnData: rc.ReturnData,
		}
		if b, err := json.Marshal(req); err == nil {
			ev.Tokens = b
		}
		if b, err := json.Marshal(resp); err == nil {
			ev.Response = b
		}
		detail := fmt.Sprintf("request %x… refunded", reqID[:8])
		if res.VerifyErr != nil {
			if ve, ok := core.AsVerificationError(res.VerifyErr); ok {
				ev.Phase = ve.Phase
				ev.TokenIndex = ve.TokenIndex
			}
			detail += ": " + res.VerifyErr.Error()
		}
		env.led.Log(audit.Event{Kind: audit.KindRefund, Outcome: audit.OutcomeFail,
			Tenant: env.tenant, Detail: detail, Evidence: ev})
	}
	return res, nil
}
