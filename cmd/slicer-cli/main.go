// Command slicer-cli drives a distributed Slicer deployment from the data
// owner / data user side: it builds the encrypted database, initializes a
// remote cloud (slicer-cloud) and chain (slicer-chain), and runs verified
// searches with on-chain fair-exchange settlement.
//
// Typical session (cloud on :7401, chain on :7402):
//
//	slicer-cli init   -bits 16 -random 1000
//	slicer-cli status
//	slicer-cli search -op '<' -value 5000 -pay 1000
//	slicer-cli insert -values 2001=4242,2002=100
//	slicer-cli search -op '=' -value 4242 -pay 1000
//
// State (all deployment secrets!) persists in -state (default
// ./slicer-state.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/obs"
	"slicer/internal/wire"
	"slicer/internal/workload"

	"encoding/json"
	"log/slog"
)

// cliState is what persists between invocations.
type cliState struct {
	Owner        json.RawMessage `json:"owner"`
	CloudAddr    string          `json:"cloudAddr"`
	ChainAddr    string          `json:"chainAddr"`
	ContractAddr chain.Address   `json:"contractAddr"`
	OwnerAcct    chain.Address   `json:"ownerAcct"`
	UserAcct     chain.Address   `json:"userAcct"`
	CloudAcct    chain.Address   `json:"cloudAcct"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-cli:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: slicer-cli <init|insert|search|status|probe|audit|rebalance> [flags]")
	}
	switch args[0] {
	case "init":
		return cmdInit(args[1:])
	case "insert":
		return cmdInsert(args[1:])
	case "search":
		return cmdSearch(args[1:])
	case "status":
		return cmdStatus(args[1:])
	case "probe":
		return cmdProbe(args[1:])
	case "audit":
		return cmdAudit(args[1:])
	case "rebalance":
		return cmdRebalance(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want init, insert, search, status, probe, audit or rebalance)", args[0])
	}
}

func commonFlags(fs *flag.FlagSet) (statePath, cloudAddr, chainAddr, tenant *string, opts func() wire.ClientOptions) {
	statePath = fs.String("state", "slicer-state.json", "path of the persisted deployment state")
	cloudAddr = fs.String("cloud", "127.0.0.1:7401", "cloud server address")
	chainAddr = fs.String("chain", "127.0.0.1:7402", "chain server address")
	tenant = fs.String("tenant", "", "tenant tag stamped on every RPC (servers label metrics and audit records with it)")
	dialTO := fs.Duration("dial-timeout", wire.DefaultDialTimeout, "timeout for connecting to a server")
	callTO := fs.Duration("call-timeout", wire.DefaultCallTimeout, "per-RPC deadline; 0 or negative disables")
	opts = func() wire.ClientOptions {
		o := wire.ClientOptions{DialTimeout: *dialTO, CallTimeout: *callTO, Tenant: *tenant}
		if *callTO <= 0 {
			o.CallTimeout = -1
		}
		return o
	}
	return
}

// logFlags registers the logging flags and returns a constructor for the
// configured logger (writing to stderr so stdout stays parseable).
func logFlags(fs *flag.FlagSet) func() (*slog.Logger, error) {
	level := fs.String("log-level", "warn", "log level: debug, info, warn, error")
	format := fs.String("log-format", "text", "log format: text or json")
	return func() (*slog.Logger, error) { return obs.NewLogger(os.Stderr, *level, *format) }
}

func loadState(path string) (*cliState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read state (did you run init?): %w", err)
	}
	var st cliState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("parse state: %w", err)
	}
	return &st, nil
}

func saveState(path string, st *cliState) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	// The blob holds all deployment secrets; keep it owner-readable only,
	// and write it atomically so an interrupted save can never leave a
	// torn file where the only copy of the keys used to be.
	return durable.AtomicWriteFile(path, data, 0o600)
}

func parseRecords(random int, bits int, values string, firstSeed int64) ([]core.Record, error) {
	if random > 0 {
		return workload.Generate(workload.Config{N: random, Bits: bits, Seed: firstSeed}), nil
	}
	if values == "" {
		return nil, fmt.Errorf("provide -random N or -values id=value,...")
	}
	var records []core.Record
	for _, pair := range strings.Split(values, ",") {
		parts := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad record %q (want id=value)", pair)
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad record id %q: %w", parts[0], err)
		}
		v, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad record value %q: %w", parts[1], err)
		}
		records = append(records, core.NewRecord(id, v))
	}
	return records, nil
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	statePath, cloudAddr, chainAddr, _, dialOpts := commonFlags(fs)
	bits := fs.Int("bits", 16, "value bit width")
	random := fs.Int("random", 0, "generate N random records")
	values := fs.String("values", "", "explicit records: id=value,id=value,...")
	tdBits := fs.Int("trapdoor-bits", 1024, "trapdoor permutation modulus bits")
	accBits := fs.Int("accumulator-bits", 1024, "accumulator modulus bits")
	prefix := fs.Bool("prefix-index", false, "index bit prefixes to enable 'search -range lo:hi'")
	mkLogger := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := mkLogger()
	if err != nil {
		return err
	}

	db, err := parseRecords(*random, *bits, *values, 1)
	if err != nil {
		return err
	}
	owner, err := core.NewOwner(core.Params{
		Bits: *bits, TrapdoorBits: *tdBits, AccumulatorBits: *accBits, PrefixIndex: *prefix,
	})
	if err != nil {
		return err
	}
	built, err := owner.Build(db)
	if err != nil {
		return err
	}
	logger.Debug("index built", "records", len(db), "entries", built.Index.Len(), "keywords", len(built.Primes))
	fmt.Printf("built encrypted index over %d records (%d index entries, %d keywords)\n",
		len(db), built.Index.Len(), len(built.Primes))

	cloud, err := wire.DialCloudOpts(*cloudAddr, dialOpts())
	if err != nil {
		return err
	}
	defer cloud.Close()
	if err := cloud.Init(owner.CloudInit(built.Index), true); err != nil {
		return fmt.Errorf("initialize cloud: %w", err)
	}
	fmt.Printf("cloud %s initialized\n", *cloudAddr)

	chainCli, err := wire.DialChainOpts(*chainAddr, dialOpts())
	if err != nil {
		return err
	}
	defer chainCli.Close()
	st := &cliState{
		CloudAddr: *cloudAddr,
		ChainAddr: *chainAddr,
		OwnerAcct: chain.AddressFromString("owner"),
		UserAcct:  chain.AddressFromString("user"),
		CloudAcct: chain.AddressFromString("cloud"),
	}
	nonce, err := chainCli.Nonce(st.OwnerAcct)
	if err != nil {
		return err
	}
	rc, err := chainCli.Mine(contract.DeployTx(st.OwnerAcct, nonce, owner.AccumulatorPub().Marshal(), owner.Ac(), 50_000_000))
	if err != nil {
		return err
	}
	if !rc.Status {
		return fmt.Errorf("contract deployment reverted: %s", rc.Err)
	}
	st.ContractAddr = rc.ContractAddress
	fmt.Printf("contract deployed at %s (gas %d)\n", rc.ContractAddress, rc.GasUsed)

	ownerBlob, err := owner.Marshal()
	if err != nil {
		return err
	}
	st.Owner = ownerBlob
	if err := saveState(*statePath, st); err != nil {
		return err
	}
	fmt.Printf("state saved to %s\n", *statePath)
	return nil
}

func cmdInsert(args []string) error {
	fs := flag.NewFlagSet("insert", flag.ContinueOnError)
	statePath, _, _, _, dialOpts := commonFlags(fs)
	random := fs.Int("random", 0, "generate N random records")
	values := fs.String("values", "", "explicit records: id=value,...")
	mkLogger := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := mkLogger()
	if err != nil {
		return err
	}
	st, err := loadState(*statePath)
	if err != nil {
		return err
	}
	owner, err := core.UnmarshalOwner(st.Owner)
	if err != nil {
		return err
	}
	records, err := parseRecords(*random, owner.Params().Bits, *values, 7)
	if err != nil {
		return err
	}
	up, err := owner.Insert(records)
	if err != nil {
		return err
	}
	logger.Debug("delta built", "records", len(records))

	cloud, err := wire.DialCloudOpts(st.CloudAddr, dialOpts())
	if err != nil {
		return err
	}
	defer cloud.Close()
	if err := cloud.Update(up); err != nil {
		return fmt.Errorf("ship delta to cloud: %w", err)
	}

	chainCli, err := wire.DialChainOpts(st.ChainAddr, dialOpts())
	if err != nil {
		return err
	}
	defer chainCli.Close()
	nonce, err := chainCli.Nonce(st.OwnerAcct)
	if err != nil {
		return err
	}
	rc, err := chainCli.Mine(&chain.Transaction{
		From: st.OwnerAcct, To: st.ContractAddr, Nonce: nonce,
		GasLimit: 1_000_000, Data: contract.SetAcData(owner.Ac()),
	})
	if err != nil {
		return err
	}
	if !rc.Status {
		return fmt.Errorf("SetAc reverted: %s", rc.Err)
	}
	fmt.Printf("inserted %d records; on-chain ADS digest refreshed (gas %d)\n", len(records), rc.GasUsed)

	ownerBlob, err := owner.Marshal()
	if err != nil {
		return err
	}
	st.Owner = ownerBlob
	return saveState(*statePath, st)
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	statePath, _, _, tenant, dialOpts := commonFlags(fs)
	opFlag := fs.String("op", "=", "operator: '=', '<' or '>'")
	value := fs.Uint64("value", 0, "query value")
	rangeFlag := fs.String("range", "", "inclusive range 'lo:hi' (needs init -prefix-index); overrides -op/-value")
	attr := fs.String("attr", "", "attribute name (empty for single-attribute data)")
	pay := fs.Uint64("pay", 1000, "search fee to escrow")
	trace := fs.Bool("trace", false, "print the merged cross-machine trace of the search after the results")
	auditDir := fs.String("audit-dir", "", "optional client-side audit ledger; journals search/settle/refund with evidence")
	mkLogger := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := mkLogger()
	if err != nil {
		return err
	}

	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("slicer-cli search")
		defer func() { _ = tr.WriteText(os.Stderr) }()
	}

	st, err := loadState(*statePath)
	if err != nil {
		return err
	}
	owner, err := core.UnmarshalOwner(st.Owner)
	if err != nil {
		return err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return err
	}

	var req *core.SearchRequest
	var queryDesc string
	endToken := tr.Span("token")
	if *rangeFlag != "" {
		parts := strings.SplitN(*rangeFlag, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -range %q (want lo:hi)", *rangeFlag)
		}
		lo, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad range low bound: %w", err)
		}
		hi, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad range high bound: %w", err)
		}
		req, err = user.RangeTokens(*attr, lo, hi)
		if err != nil {
			return err
		}
		queryDesc = fmt.Sprintf("%s in [%d,%d]", *attr, lo, hi)
	} else {
		var op core.Op
		switch *opFlag {
		case "=":
			op = core.OpEqual
		case "<":
			op = core.OpLess
		case ">":
			op = core.OpGreater
		default:
			return fmt.Errorf("bad -op %q", *opFlag)
		}
		req, err = user.Token(core.Query{Attr: *attr, Op: op, Value: *value})
		if err != nil {
			return err
		}
		queryDesc = fmt.Sprintf("%s %s %d", *attr, *opFlag, *value)
	}
	endToken()
	logger.Debug("tokens generated", "query", queryDesc, "tokens", len(req.Tokens))
	fmt.Printf("query %s -> %d search tokens\n", queryDesc, len(req.Tokens))

	chainCli, err := wire.DialChainOpts(st.ChainAddr, dialOpts())
	if err != nil {
		return err
	}
	defer chainCli.Close()
	cloud, err := wire.DialCloudOpts(st.CloudAddr, dialOpts())
	if err != nil {
		return err
	}
	defer cloud.Close()
	led, err := openClientLedger(*auditDir, *tenant, logger)
	if err != nil {
		return err
	}
	defer led.Close()

	env := &fairExchangeEnv{
		st: st, owner: owner, user: user,
		cloud: cloud, chain: chainCli,
		logger: logger, led: led, tenant: *tenant,
	}
	res, err := env.run(req, *pay, tr)
	if err != nil {
		return err
	}
	fmt.Printf("escrowed %d on chain (request %x...)\n", *pay, res.ReqID[:6])
	if !res.Settled {
		fmt.Println("on-chain verification FAILED; payment refunded")
		if res.VerifyErr != nil {
			fmt.Println("local verification:", res.VerifyErr)
		}
		return nil
	}
	fmt.Printf("on-chain verification passed (gas %d); payment settled to the cloud\n", res.SubmitGas)
	fmt.Println("matching record IDs:", res.IDs)
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	statePath, _, _, _, dialOpts := commonFlags(fs)
	mkLogger := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := mkLogger(); err != nil {
		return err
	}
	st, err := loadState(*statePath)
	if err != nil {
		return err
	}
	cloud, err := wire.DialCloudOpts(st.CloudAddr, dialOpts())
	if err != nil {
		return err
	}
	defer cloud.Close()
	stats, err := cloud.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("cloud %s: %d index entries (%d bytes), %d primes (%d bytes)\n",
		st.CloudAddr, stats.IndexEntries, stats.IndexBytes, stats.Primes, stats.ADSBytes)
	fmt.Printf("  served %d searches, up %.0fs\n", stats.SearchCalls, stats.UptimeSeconds)
	printShardStatus(st.CloudAddr, dialOpts())
	if w := stats.SearchWindow; w != nil && w.Count > 0 {
		fmt.Printf("  search latency (last %.0fs, %d calls): p50 %s  p99 %s\n",
			w.WindowSeconds, w.Count,
			time.Duration(w.P50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(w.P99*float64(time.Second)).Round(time.Microsecond))
	}
	for _, slo := range stats.SLOs {
		if slo.Missing {
			fmt.Printf("  slo %-12s no data yet\n", slo.Name)
			continue
		}
		fmt.Printf("  slo %-12s %-8s good %.4f  burn fast %.1f / slow %.1f\n",
			slo.Name, slo.State, slo.GoodFraction, slo.FastBurn, slo.SlowBurn)
	}

	chainCli, err := wire.DialChainOpts(st.ChainAddr, dialOpts())
	if err != nil {
		return err
	}
	defer chainCli.Close()
	height, err := chainCli.Height()
	if err != nil {
		return err
	}
	fmt.Printf("chain %s: height %d, contract %s\n", st.ChainAddr, height, st.ContractAddr)
	for _, acct := range []struct {
		name string
		addr chain.Address
	}{{"owner", st.OwnerAcct}, {"user", st.UserAcct}, {"cloud", st.CloudAcct}} {
		bal, err := chainCli.Balance(acct.addr)
		if err != nil {
			return err
		}
		fmt.Printf("  %-6s %s balance %d\n", acct.name, acct.addr, bal)
	}
	return nil
}
