package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"slicer/internal/audit"
	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/wire"
)

// openClientLedger opens the client-side audit ledger at dir, stamping every
// record with tenant. An empty dir disables journaling (nil ledger — all
// ledger methods are nil-safe).
func openClientLedger(dir, tenant string, logger *slog.Logger) (*audit.Ledger, error) {
	if dir == "" {
		return nil, nil
	}
	led, err := audit.Open(audit.Options{
		Dir:    dir,
		Fsync:  durable.FsyncAlways,
		Logger: logger,
	})
	if err != nil {
		return nil, fmt.Errorf("audit ledger: %w", err)
	}
	led.SetTenant(tenant)
	return led, nil
}

// cmdProbe runs the continuous verification prober from the CLI: every probe
// issues a fresh synthetic verified search through the full fair-exchange
// flow and journals the outcome as a KindProbe record — a failed public
// verification refunds the payment, journals the evidence bundle, and makes
// the probe (and this command's exit status) fail.
func cmdProbe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	statePath, _, _, tenant, dialOpts := commonFlags(fs)
	opFlag := fs.String("op", "=", "operator: '=', '<' or '>'")
	value := fs.Uint64("value", 0, "probe query value")
	attr := fs.String("attr", "", "attribute name (empty for single-attribute data)")
	pay := fs.Uint64("pay", 1000, "search fee to escrow per probe")
	interval := fs.Duration("interval", audit.DefaultProbeInterval, "pause between probes")
	count := fs.Int("count", 1, "probes to run; 0 probes forever")
	auditDir := fs.String("audit-dir", "", "audit ledger journaling probe outcomes (empty: count/log only)")
	mkLogger := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := mkLogger()
	if err != nil {
		return err
	}

	var op core.Op
	switch *opFlag {
	case "=":
		op = core.OpEqual
	case "<":
		op = core.OpLess
	case ">":
		op = core.OpGreater
	default:
		return fmt.Errorf("bad -op %q", *opFlag)
	}

	st, err := loadState(*statePath)
	if err != nil {
		return err
	}
	owner, err := core.UnmarshalOwner(st.Owner)
	if err != nil {
		return err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return err
	}
	chainCli, err := wire.DialChainOpts(st.ChainAddr, dialOpts())
	if err != nil {
		return err
	}
	defer chainCli.Close()
	cloud, err := wire.DialCloudOpts(st.CloudAddr, dialOpts())
	if err != nil {
		return err
	}
	defer cloud.Close()
	led, err := openClientLedger(*auditDir, *tenant, logger)
	if err != nil {
		return err
	}
	defer led.Close()

	env := &fairExchangeEnv{
		st: st, owner: owner, user: user,
		cloud: cloud, chain: chainCli,
		logger: logger, led: led, tenant: *tenant,
	}
	fn := func() (string, *audit.Evidence, error) {
		req, err := user.Token(core.Query{Attr: *attr, Op: op, Value: *value})
		if err != nil {
			return "", nil, err
		}
		res, err := env.run(req, *pay, nil)
		if err != nil {
			return "", nil, err
		}
		if !res.Settled {
			// The refund evidence bundle is already journaled by the round
			// as a KindRefund record; the probe record carries the verdict.
			detail := fmt.Sprintf("request %x… refunded", res.ReqID[:8])
			if res.VerifyErr != nil {
				return detail, nil, fmt.Errorf("on-chain verification failed: %w", res.VerifyErr)
			}
			return detail, nil, fmt.Errorf("on-chain verification failed: payment refunded")
		}
		q := fmt.Sprintf("%s %d", *opFlag, *value)
		if *attr != "" {
			q = *attr + " " + q
		}
		return fmt.Sprintf("query %s settled, gas %d, %d matches",
			q, res.SubmitGas, len(res.IDs)), nil, nil
	}
	prober := audit.NewProber(led, fn, audit.ProberOptions{
		Interval: *interval, Tenant: *tenant, Logger: logger,
	})

	probes, failures := 0, 0
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		rec, err := prober.ProbeOnce()
		probes++
		switch {
		case err != nil:
			failures++
			fmt.Printf("probe FAILED: %v\n", err)
		case rec != nil:
			fmt.Printf("probe #%d ok: %s\n", rec.Seq, rec.Detail)
		default:
			fmt.Println("probe ok")
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d probes failed", failures, probes)
	}
	return nil
}

// cmdAudit inspects an audit ledger offline: `verify` re-walks the hash
// chain from genesis, `tail` prints the most recent records.
func cmdAudit(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: slicer-cli audit <verify|tail> -audit-dir DIR")
	}
	switch args[0] {
	case "verify":
		return cmdAuditVerify(args[1:])
	case "tail":
		return cmdAuditTail(args[1:])
	default:
		return fmt.Errorf("unknown audit subcommand %q (want verify or tail)", args[0])
	}
}

func cmdAuditVerify(args []string) error {
	fs := flag.NewFlagSet("audit verify", flag.ContinueOnError)
	dir := fs.String("audit-dir", "", "audit ledger directory to verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("audit verify: -audit-dir is required")
	}
	res, err := audit.Verify(durable.OS, *dir)
	if err != nil {
		if res != nil && res.Records > 0 {
			fmt.Printf("%d records verified before the violation\n", res.Records)
		}
		return fmt.Errorf("audit chain VIOLATION: %w", err)
	}
	fmt.Printf("audit chain verified: %d records, head #%d %s\n", res.Records, res.HeadSeq, res.HeadHash)
	if res.Truncated > 0 {
		fmt.Printf("  %d torn record(s) truncated from the WAL tail (unacknowledged writes, not a chain break)\n", res.Truncated)
	}
	fmt.Printf("  %d verification failure(s), %d evidence bundle(s)\n", res.Failures, res.Evidence)
	return nil
}

func cmdAuditTail(args []string) error {
	fs := flag.NewFlagSet("audit tail", flag.ContinueOnError)
	dir := fs.String("audit-dir", "", "audit ledger directory to read")
	n := fs.Int("n", 20, "how many of the newest records to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("audit tail: -audit-dir is required")
	}
	records, _, err := audit.ReadDir(durable.OS, *dir)
	if err != nil {
		return fmt.Errorf("audit chain VIOLATION: %w", err)
	}
	if len(records) > *n && *n >= 0 {
		records = records[len(records)-*n:]
	}
	for i, rec := range records {
		if i > 0 {
			fmt.Println()
		}
		audit.WriteRecordText(os.Stdout, rec)
	}
	return nil
}
