// Command slicer-chain runs a proof-of-authority blockchain network with
// the Slicer verification contract registered, exposed over the wire
// protocol. Demo accounts (owner/user/cloud, derived from the names passed
// to -fund) are pre-funded at genesis.
//
// Usage:
//
//	slicer-chain -listen 0.0.0.0:7402 -validators 3 -fund owner,user,cloud
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-chain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:7402", "address to listen on")
		validators = flag.Int("validators", 3, "number of PoA validators")
		fund       = flag.String("fund", "owner,user,cloud", "comma-separated account names to pre-fund")
		balance    = flag.Uint64("balance", 1<<40, "genesis balance per funded account")
		snapshot   = flag.String("snapshot", "", "path for chain persistence: replayed at boot if present, written at shutdown")
		admin      = flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		idle       = flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "drop connections idle longer than this; 0 disables")
		traceCap   = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "how many recent propagated traces to retain for /debug/traces")
		traceSmpl  = flag.Int("trace-sample", 1, "retain 1 of every N propagated traces (slow outliers always kept)")
	)
	flag.Parse()
	if *validators < 1 {
		return fmt.Errorf("need at least one validator")
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		return err
	}
	vals := make([]chain.Address, *validators)
	for i := range vals {
		vals[i] = chain.AddressFromString(fmt.Sprintf("validator-%d", i))
	}
	alloc := make(map[chain.Address]uint64)
	for _, name := range strings.Split(*fund, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := chain.AddressFromString(name)
		alloc[a] = *balance
		fmt.Printf("funded %-8s %s with %d\n", name, a, *balance)
	}
	network, err := chain.NewNetwork(registry, vals, alloc)
	if err != nil {
		return err
	}

	// Replay a persisted chain, if any, into every node.
	if *snapshot != "" {
		if data, err := os.ReadFile(*snapshot); err == nil {
			snap, err := chain.UnmarshalSnapshot(data)
			if err != nil {
				return fmt.Errorf("parse snapshot: %w", err)
			}
			for _, node := range network.Nodes() {
				restored, err := chain.RestoreNode(chain.Config{
					Identity:     node.Identity(),
					Registry:     registry,
					Validators:   vals,
					GenesisAlloc: alloc,
				}, snap)
				if err != nil {
					return fmt.Errorf("replay snapshot: %w", err)
				}
				*node = *restored
			}
			fmt.Printf("replayed %d blocks from %s\n", network.Leader().Height(), *snapshot)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("read snapshot: %w", err)
		}
	}

	srv := wire.NewChainServer(network)
	srv.SetObservability(reg, logger)
	srv.Server().SetIdleTimeout(*idle)
	srv.Traces().SetCapacity(*traceCap)
	srv.Traces().SetSampling(*traceSmpl)
	if *admin != "" {
		adm, err := obs.StartAdmin(*admin, reg, srv.Traces(), logger)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		fmt.Printf("slicer-chain: admin endpoint on http://%s/metrics\n", adm.Addr())
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("slicer-chain: %d validators, serving on %s\n", *validators, addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("slicer-chain: shutting down")

	if *snapshot != "" {
		data, err := network.Leader().ExportSnapshot().Marshal()
		if err != nil {
			return fmt.Errorf("export snapshot: %w", err)
		}
		if err := os.WriteFile(*snapshot, data, 0o644); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		fmt.Printf("persisted %d blocks to %s\n", network.Leader().Height(), *snapshot)
	}
	return nil
}
