// Command slicer-chain runs a proof-of-authority blockchain network with
// the Slicer verification contract registered, exposed over the wire
// protocol. Demo accounts (owner/user/cloud, derived from the names passed
// to -fund) are pre-funded at genesis.
//
// Usage:
//
//	slicer-chain -listen 0.0.0.0:7402 -validators 3 -fund owner,user,cloud -data-dir /var/lib/slicer-chain
//
// With -data-dir every sealed block is journaled to a write-ahead log
// before the step is acknowledged and the chain is periodically folded
// into an atomic snapshot; a restart (crash included) replays blocks
// through full validation back to the exact state and receipt roots.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"slicer/internal/audit"
	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/durable"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-chain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:7402", "address to listen on")
		validators = flag.Int("validators", 3, "number of PoA validators")
		fund       = flag.String("fund", "owner,user,cloud", "comma-separated account names to pre-fund")
		balance    = flag.Uint64("balance", 1<<40, "genesis balance per funded account")
		dataDir    = flag.String("data-dir", "", "durable data directory: block WAL + snapshots, crash-safe recovery at boot")
		fsync      = flag.String("fsync", "always", "WAL durability: always, never, or a flush interval like 100ms")
		snapEvery  = flag.Int("snapshot-every", 0, "fold the chain into a snapshot every N sealed blocks (0: default 256, <0: off)")
		snapshot   = flag.String("snapshot", "", "deprecated: single-file persistence, replayed at boot and written at shutdown; prefer -data-dir")
		auditDir   = flag.String("audit-dir", "", `tamper-evident audit ledger directory (default <data-dir>/audit when -data-dir is set; "none" disables)`)
		admin      = flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		idle       = flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "drop connections idle longer than this; 0 disables")
		traceCap   = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "how many recent propagated traces to retain for /debug/traces")
		traceSmpl  = flag.Int("trace-sample", 1, "retain 1 of every N propagated traces (slow outliers always kept)")
		sloSpec    = flag.String("slo", "", `latency objectives, e.g. "name=submit,metric=rpc:submit,target=500ms,good=0.99,window=2m;..." or @objectives.conf`)
		profileMax = flag.Int("profile-captures", obs.DefProfileMaxCaptures, "max retained profile bundles under <data-dir>/profiles; oldest evicted first")
		profileCPU = flag.Duration("profile-cpu", obs.DefProfileCPUDuration, "CPU-profile window per capture")
		labelCap   = flag.Int("label-cap", wire.DefaultTenantLabelCap, "max distinct tenant label values before new tenants collapse into \"other\"")
	)
	flag.Parse()
	if *validators < 1 {
		return fmt.Errorf("need at least one validator")
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		return err
	}
	vals := make([]chain.Address, *validators)
	for i := range vals {
		vals[i] = chain.AddressFromString(fmt.Sprintf("validator-%d", i))
	}
	alloc := make(map[chain.Address]uint64)
	for _, name := range strings.Split(*fund, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := chain.AddressFromString(name)
		alloc[a] = *balance
		fmt.Printf("funded %-8s %s with %d\n", name, a, *balance)
	}
	network, err := chain.NewNetwork(registry, vals, alloc)
	if err != nil {
		return err
	}

	if *dataDir != "" && *snapshot != "" {
		return fmt.Errorf("-data-dir and -snapshot are mutually exclusive (migrate by booting once with -snapshot, shutting down, then switching to -data-dir)")
	}

	// Replay a persisted chain, if any, into every node.
	if *snapshot != "" {
		if data, err := os.ReadFile(*snapshot); err == nil {
			snap, err := chain.UnmarshalSnapshot(data)
			if err != nil {
				return fmt.Errorf("parse snapshot: %w", err)
			}
			for _, node := range network.Nodes() {
				restored, err := chain.RestoreNode(chain.Config{
					Identity:     node.Identity(),
					Registry:     registry,
					Validators:   vals,
					GenesisAlloc: alloc,
				}, snap)
				if err != nil {
					return fmt.Errorf("replay snapshot: %w", err)
				}
				*node = *restored
			}
			fmt.Printf("replayed %d blocks from %s\n", network.Leader().Height(), *snapshot)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("read snapshot: %w", err)
		}
	}

	srv := wire.NewChainServer(network)
	srv.Server().SetLabelCap(*labelCap)
	srv.SetObservability(reg, logger)
	if *dataDir != "" {
		policy, interval, err := durable.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		stats, err := srv.EnableDurability(wire.DurabilityOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: interval,
			SnapshotEvery: *snapEvery,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			return fmt.Errorf("durability: %w", err)
		}
		fmt.Printf("recovered from %s: snapshot@%d, %d blocks replayed, %d skipped, %d truncated; height %d\n",
			*dataDir, stats.SnapshotIndex, stats.Replayed, stats.Skipped, stats.Truncated, network.Leader().Height())
	}
	srv.Server().SetIdleTimeout(*idle)
	srv.Traces().SetCapacity(*traceCap)
	srv.Traces().SetSampling(*traceSmpl)

	// Audit ledger: journals every sealed block with transactions as a
	// tamper-evident KindSeal record, anchoring the settlement history.
	ledgerDir := *auditDir
	if ledgerDir == "" && *dataDir != "" {
		ledgerDir = filepath.Join(*dataDir, "audit")
	}
	var led *audit.Ledger
	if ledgerDir != "" && ledgerDir != "none" {
		policy, interval, err := durable.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		led, err = audit.Open(audit.Options{
			Dir:           ledgerDir,
			Fsync:         policy,
			FsyncInterval: interval,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			return fmt.Errorf("audit ledger: %w", err)
		}
		defer led.Close()
		srv.EnableAudit(led)
		seq, hash := led.Head()
		fmt.Printf("audit ledger %s: chain verified, head #%d %s\n", ledgerDir, seq, hash)
	}

	var engine *obs.Engine
	if *sloSpec != "" {
		aliases := wire.SLOAliases("chain",
			wire.MethodChainSubmit, wire.MethodChainStep, wire.MethodChainReceipt,
			wire.MethodChainBalance, wire.MethodChainNonce, wire.MethodChainCall,
			wire.MethodChainHeight)
		for k, v := range audit.SLOAliases() {
			aliases[k] = v
		}
		objs, err := obs.ParseObjectives(*sloSpec, aliases)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		engine = obs.NewEngine(reg, objs, obs.EngineOptions{Logger: logger})
		defer engine.Run(0)()
	}
	var prof *obs.Profiler
	if *dataDir != "" {
		prof, err = obs.NewProfiler(obs.ProfilerOptions{
			Dir:         filepath.Join(*dataDir, "profiles"),
			MaxCaptures: *profileMax,
			CPUDuration: *profileCPU,
			Registry:    reg,
			Logger:      logger,
		})
		if err != nil {
			return fmt.Errorf("profiler: %w", err)
		}
		if engine != nil {
			engine.OnBreach(func(st obs.SLOStatus) { prof.Trigger("slo-" + st.Name) })
		}
	} else if engine != nil {
		logger.Warn("continuous profiler disabled: -slo set without -data-dir, breaches will not capture profiles")
	}
	if *admin != "" {
		opts := obs.AdminOptions{
			Registry: reg,
			Traces:   srv.Traces(),
			Logger:   logger,
			SLO:      engine,
			Profiler: prof,
		}
		if led != nil {
			opts.Audit = led.AdminHandler()
		}
		adm, err := obs.StartAdminOpts(*admin, opts)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		fmt.Printf("slicer-chain: admin endpoint on http://%s/metrics\n", adm.Addr())
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("slicer-chain: %d validators, serving on %s\n", *validators, addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("slicer-chain: shutting down")

	if *snapshot != "" {
		data, err := network.Leader().ExportSnapshot().Marshal()
		if err != nil {
			return fmt.Errorf("export snapshot: %w", err)
		}
		if err := durable.AtomicWriteFile(*snapshot, data, 0o600); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		fmt.Printf("persisted %d blocks to %s\n", network.Leader().Height(), *snapshot)
	}
	return nil
}
