// Command slicer-router fronts a fleet of slicer-cloud shards as one cloud:
// owners initialize and update through it, users search through it, and the
// responses — bytes, verification objects, even error text — are identical
// to a single cloud holding the union index.
//
// Usage:
//
//	slicer-router -listen 0.0.0.0:7400 \
//	  -shards s1=10.0.0.1:7401,s2=10.0.0.2:7401,s3=10.0.0.3:7401 \
//	  -data-dir /var/lib/slicer-router
//
// Placement is a consistent-hash ring over index-label address prefixes.
// With -data-dir the routing table (every epoch) and the deployment's
// trapdoor key are journaled before any RPC is acknowledged, so a restarted
// router resumes with its exact acknowledged view. Range moves between
// shards are driven over the admin surface (slicer-cli rebalance) while
// searches keep flowing.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"slicer/internal/durable"
	"slicer/internal/obs"
	"slicer/internal/shard"
	"slicer/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-router:", err)
		os.Exit(1)
	}
}

// parseShards turns "id=addr,id=addr" into an ordered spec list.
func parseShards(spec string) ([]shard.ShardSpec, error) {
	var specs []shard.ShardSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad shard %q (want id=host:port)", part)
		}
		specs = append(specs, shard.ShardSpec{ID: kv[0], Addr: kv[1]})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-shards needs at least one id=host:port entry")
	}
	return specs, nil
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7400", "address to listen on")
	shardsFlag := flag.String("shards", "", "shard fleet: comma-separated id=host:port (required)")
	dataDir := flag.String("data-dir", "", "durable data directory: routing-table + trapdoor-key WAL, crash-safe recovery at boot")
	fsync := flag.String("fsync", "always", "WAL durability: always, never, or a flush interval like 100ms")
	vnodes := flag.Int("vnodes", shard.DefaultVnodes, "consistent-hash points per shard for a fresh routing table")
	ringEpochs := flag.Int("ring-epochs", 8, "past routing-table epochs retained in memory for inspection")
	workers := flag.Int("workers", 0, "token-level search concurrency (0: one per core)")
	batch := flag.Int("batch", shard.DefaultBatch, "counter probes per scatter round trip")
	admin := flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	idle := flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "drop connections idle longer than this; 0 disables")
	dialTO := flag.Duration("dial-timeout", wire.DefaultDialTimeout, "timeout for connecting to a shard")
	callTO := flag.Duration("call-timeout", wire.DefaultCallTimeout, "per-shard-RPC deadline; 0 or negative disables")
	traceCap := flag.Int("trace-capacity", obs.DefaultTraceCapacity, "how many recent propagated traces to retain for /debug/traces")
	flag.Parse()

	if *shardsFlag == "" {
		return fmt.Errorf("-shards is required (e.g. -shards s1=127.0.0.1:7411,s2=127.0.0.1:7412)")
	}
	specs, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	clientOpts := wire.ClientOptions{DialTimeout: *dialTO, CallTimeout: *callTO}
	if *callTO <= 0 {
		clientOpts.CallTimeout = -1
	}
	opts := shard.Options{
		Shards:     specs,
		DataDir:    *dataDir,
		Vnodes:     *vnodes,
		RingEpochs: *ringEpochs,
		Workers:    *workers,
		Batch:      *batch,
		Registry:   reg,
		Logger:     logger,
		Client:     clientOpts,
	}
	if *dataDir != "" {
		policy, interval, err := durable.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		opts.Fsync = policy
		opts.FsyncInterval = interval
	}
	router, err := shard.NewRouter(opts)
	if err != nil {
		return err
	}
	defer router.Close()
	router.Server().SetIdleTimeout(*idle)
	router.Server().SetLogger(logger)
	router.Traces().SetCapacity(*traceCap)

	if *admin != "" {
		adm, err := obs.StartAdminOpts(*admin, obs.AdminOptions{
			Registry: reg,
			Traces:   router.Traces(),
			Logger:   logger,
		})
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		fmt.Printf("slicer-router: admin endpoint on http://%s/metrics\n", adm.Addr())
	}

	addr, err := router.Listen(*listen)
	if err != nil {
		return err
	}
	table := router.Table()
	fmt.Printf("slicer-router: serving on %s, %d shards, table epoch %d (%d segments)\n",
		addr, len(specs), table.Epoch, len(table.Segments))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("slicer-router: shutting down")
	return nil
}
