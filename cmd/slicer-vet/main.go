// Command slicer-vet runs Slicer's invariant analyzers over the module:
// constant-time comparison of secret-derived bytes (ctcompare), no weak
// randomness near key material (weakrand), history-independent
// serialization (maporder), no wall-clock reads in deterministic protocol
// packages (wallclock) and no silently dropped errors (errdrop).
//
// Usage:
//
//	slicer-vet [-json|-sarif] [packages]
//
// Packages are directories relative to the current module ("./internal/core")
// or the wildcard "./..." (the default), matching every package in the
// module. The exit code is 0 when the tree is clean, 1 when any diagnostic
// is reported, and 2 on operational errors (unparseable source, type-check
// failures).
//
// Findings are suppressed per-line by directives with mandatory reasons:
//
//	//slicer:allow <analyzer> -- <reason>
//
// A malformed or unknown directive is itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"slicer/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report on stdout")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout (code-scanning upload format)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: slicer-vet [-json|-sarif] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loadPatterns(loader, cwd, patterns)
	if err != nil {
		fatal(err)
	}

	// A package that does not type-check produces unreliable analysis;
	// surface the errors and bail before reporting findings.
	typeErrs := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "slicer-vet: typecheck %s: %v\n", pkg.PkgPath, terr)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analysis.All())
	relativize(diags, root)

	switch {
	case *jsonOut && *sarifOut:
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	case *jsonOut:
		if err := analysis.WriteJSON(os.Stdout, loader.ModulePath, len(pkgs), diags); err != nil {
			fatal(err)
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, analysis.All(), diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "slicer-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// loadPatterns resolves package patterns: "./..." (or "all") loads the
// whole module, anything else is a directory.
func loadPatterns(loader *analysis.Loader, cwd string, patterns []string) ([]*analysis.Package, error) {
	var pkgs []*analysis.Package
	seen := make(map[string]bool)
	add := func(pkg *analysis.Package) {
		if pkg != nil && !seen[pkg.PkgPath] {
			seen[pkg.PkgPath] = true
			pkgs = append(pkgs, pkg)
		}
	}
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" {
			loaded, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, pkg := range loaded {
				add(pkg)
			}
			continue
		}
		dir := strings.TrimSuffix(pat, "/...")
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if strings.HasSuffix(pat, "/...") {
			loaded, err := loadTree(loader, dir)
			if err != nil {
				return nil, err
			}
			for _, pkg := range loaded {
				add(pkg)
			}
			continue
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("slicer-vet: no buildable Go files in %s", dir)
		}
		add(pkg)
	}
	return pkgs, nil
}

// loadTree loads every package under one directory subtree by reusing
// LoadAll's walk filtered to the subtree.
func loadTree(loader *analysis.Loader, dir string) ([]*analysis.Package, error) {
	all, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	prefix := dir + string(os.PathSeparator)
	for _, pkg := range all {
		if pkg.Dir == dir || strings.HasPrefix(pkg.Dir+string(os.PathSeparator), prefix) {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// relativize rewrites diagnostic file names relative to the module root
// so output is stable across machines (and readable in CI logs).
func relativize(diags []analysis.Diagnostic, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slicer-vet:", err)
	os.Exit(2)
}
