// Command slicer-bench regenerates the paper's evaluation tables and
// figures (and this repository's ablation experiments) on the local
// machine.
//
// Usage:
//
//	slicer-bench                     # run everything at quick scale
//	slicer-bench -exp fig3a,fig3b    # run selected experiments
//	slicer-bench -scale full         # the paper's 10K-160K sweep (slow)
//	slicer-bench -list               # list experiment IDs
//
// Results print as aligned text tables; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"slicer/internal/bench"
	"slicer/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag  = flag.String("scale", "quick", "sweep scale: quick or full")
		formatFlag = flag.String("format", "text", "output format: text, csv, markdown or json")
		listFlag   = flag.Bool("list", false, "list experiment IDs and exit")
		quiet      = flag.Bool("q", false, "suppress progress output")
		obsFlag    = flag.Bool("obs", false, "attach a metrics registry and print each experiment's instrument delta as JSON")
		artifact   = flag.String("artifact", "", "write a machine-readable run record (BENCH_<scale>.json) to this path")
		baseline   = flag.String("baseline", "", "compare against a previous artifact; exit non-zero on >-max-regression slowdowns")
		maxRegress = flag.Float64("max-regression", 2.0, "allowed wall-time factor vs -baseline before failing")
	)
	flag.Parse()
	var render func(*bench.Table)
	switch *formatFlag {
	case "text":
		render = func(t *bench.Table) { t.Fprint(os.Stdout) }
	case "csv":
		render = func(t *bench.Table) { t.FprintCSV(os.Stdout) }
	case "markdown":
		render = func(t *bench.Table) { t.FprintMarkdown(os.Stdout) }
	case "json":
		render = func(t *bench.Table) { t.FprintJSON(os.Stdout) }
	default:
		return fmt.Errorf("unknown -format %q (want text, csv, markdown or json)", *formatFlag)
	}

	if *listFlag {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	scale, err := bench.ScaleByName(*scaleFlag)
	if err != nil {
		return err
	}
	runner := bench.NewRunner(scale)
	if !*quiet {
		runner.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  ... "+format+"\n", args...)
		}
	}
	var reg *obs.Registry
	if *obsFlag {
		reg = obs.NewRegistry()
		runner.Registry = reg
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.Find(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("slicer-bench: %d experiment(s) at %s scale\n\n", len(selected), scale.Name)
	record := bench.NewArtifact(scale.Name)
	start := time.Now()
	for _, e := range selected {
		// Collect garbage left by the previous experiment so its live heap
		// (memoized deployments, witness trees) doesn't tax this one's GC.
		runtime.GC()
		expStart := time.Now()
		var before map[string]float64
		if reg != nil {
			before = reg.Snapshot()
		}
		table, err := e.Run(runner)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		render(table)
		var delta map[string]float64
		if reg != nil {
			delta = obs.Delta(before, reg.Snapshot())
			blob, err := json.Marshal(map[string]any{"experiment": e.ID, "delta": delta})
			if err != nil {
				return err
			}
			fmt.Printf("obs %s\n", blob)
		}
		record.Add(e, table, time.Since(expStart), delta)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  [%s done in %s]\n", e.ID, time.Since(expStart).Round(time.Millisecond))
		}
	}
	total := time.Since(start)
	record.TotalMs = float64(total) / float64(time.Millisecond)
	fmt.Printf("total: %s\n", total.Round(time.Millisecond))

	if *artifact != "" {
		if err := record.WriteFile(*artifact); err != nil {
			return fmt.Errorf("write artifact: %w", err)
		}
		fmt.Printf("artifact written to %s (commit %s)\n", *artifact, record.GitSHA)
	}
	if *baseline != "" {
		base, err := bench.LoadArtifact(*baseline)
		if err != nil {
			return fmt.Errorf("load baseline: %w", err)
		}
		if regs := bench.Compare(base, record, *maxRegress); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION", r)
			}
			return fmt.Errorf("%d experiment(s) regressed more than %.1fx vs %s", len(regs), *maxRegress, *baseline)
		}
		fmt.Printf("no regression > %.1fx vs %s (%d comparable experiments)\n",
			*maxRegress, *baseline, len(base.Experiments))
	}
	return nil
}
