// Command slicer-cloud runs the untrusted search server: it stores the
// encrypted index and the ADS prime list shipped by a data owner and
// answers search requests with verification objects (Algorithm 4).
//
// Usage:
//
//	slicer-cloud -listen 0.0.0.0:7401
//
// The server starts empty; a data owner initializes it over the wire
// protocol (see cmd/slicer-cli and examples/distributed).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"slicer/internal/obs"
	"slicer/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-cloud:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7401", "address to listen on")
	state := flag.String("state", "", "path for cloud persistence: restored at boot if present, written at shutdown")
	admin := flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	idle := flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "drop connections idle longer than this; 0 disables")
	traceCap := flag.Int("trace-capacity", obs.DefaultTraceCapacity, "how many recent propagated traces to retain for /debug/traces")
	traceSample := flag.Int("trace-sample", 1, "retain 1 of every N propagated traces (slow outliers always kept)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	srv := wire.NewCloudServer()
	srv.SetObservability(reg, logger)
	srv.Server().SetIdleTimeout(*idle)
	srv.Traces().SetCapacity(*traceCap)
	srv.Traces().SetSampling(*traceSample)
	if *admin != "" {
		adm, err := obs.StartAdmin(*admin, reg, srv.Traces(), logger)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		fmt.Printf("slicer-cloud: admin endpoint on http://%s/metrics\n", adm.Addr())
	}
	if *state != "" {
		if data, err := os.ReadFile(*state); err == nil {
			if err := srv.Restore(data); err != nil {
				return fmt.Errorf("restore state: %w", err)
			}
			fmt.Printf("restored cloud state from %s\n", *state)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("read state: %w", err)
		}
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("slicer-cloud: serving on %s\n", addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("slicer-cloud: shutting down")

	if *state != "" {
		data, err := srv.Snapshot()
		if err != nil {
			return fmt.Errorf("snapshot state: %w", err)
		}
		if data != nil {
			if err := os.WriteFile(*state, data, 0o644); err != nil {
				return fmt.Errorf("write state: %w", err)
			}
			fmt.Printf("persisted cloud state to %s\n", *state)
		}
	}
	return nil
}
