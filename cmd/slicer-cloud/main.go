// Command slicer-cloud runs the untrusted search server: it stores the
// encrypted index and the ADS prime list shipped by a data owner and
// answers search requests with verification objects (Algorithm 4).
//
// Usage:
//
//	slicer-cloud -listen 0.0.0.0:7401 -data-dir /var/lib/slicer-cloud
//
// The server starts empty; a data owner initializes it over the wire
// protocol (see cmd/slicer-cli and examples/distributed). With -data-dir
// every state-mutating RPC is journaled to a write-ahead log before it is
// acknowledged and the full state is periodically folded into an atomic
// snapshot, so a crash (kill -9 included) recovers to the exact
// acknowledged state on restart.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"slicer/internal/audit"
	"slicer/internal/durable"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slicer-cloud:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7401", "address to listen on")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL + snapshots, crash-safe recovery at boot")
	fsync := flag.String("fsync", "always", "WAL durability: always, never, or a flush interval like 100ms")
	snapEvery := flag.Int("snapshot-every", 0, "fold state into a snapshot every N journaled records (0: default 256, <0: off)")
	auditDir := flag.String("audit-dir", "", `tamper-evident audit ledger directory (default <data-dir>/audit when -data-dir is set; "none" disables)`)
	state := flag.String("state", "", "deprecated: single-file persistence, restored at boot and written at shutdown; prefer -data-dir")
	admin := flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	idle := flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "drop connections idle longer than this; 0 disables")
	traceCap := flag.Int("trace-capacity", obs.DefaultTraceCapacity, "how many recent propagated traces to retain for /debug/traces")
	traceSample := flag.Int("trace-sample", 1, "retain 1 of every N propagated traces (slow outliers always kept)")
	sloSpec := flag.String("slo", "", `latency objectives, e.g. "name=search,metric=rpc:search,target=250ms,good=0.99,window=2m;..." or @objectives.conf`)
	profileMax := flag.Int("profile-captures", obs.DefProfileMaxCaptures, "max retained profile bundles under <data-dir>/profiles; oldest evicted first")
	profileCPU := flag.Duration("profile-cpu", obs.DefProfileCPUDuration, "CPU-profile window per capture")
	labelCap := flag.Int("label-cap", wire.DefaultTenantLabelCap, "max distinct tenant label values before new tenants collapse into \"other\"")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	srv := wire.NewCloudServer()
	srv.Server().SetLabelCap(*labelCap)
	srv.SetObservability(reg, logger)
	srv.Server().SetIdleTimeout(*idle)
	srv.Traces().SetCapacity(*traceCap)
	srv.Traces().SetSampling(*traceSample)

	// The audit ledger opens before the SLO engine and admin endpoint so the
	// integrity series, the /debug/audit handler and the server hooks all see
	// the same ledger. It defaults on next to -data-dir: a server durable
	// enough to recover state is durable enough to account for it.
	ledgerDir := *auditDir
	if ledgerDir == "" && *dataDir != "" {
		ledgerDir = filepath.Join(*dataDir, "audit")
	}
	var led *audit.Ledger
	if ledgerDir != "" && ledgerDir != "none" {
		policy, interval, err := durable.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		led, err = audit.Open(audit.Options{
			Dir:           ledgerDir,
			Fsync:         policy,
			FsyncInterval: interval,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			return fmt.Errorf("audit ledger: %w", err)
		}
		defer led.Close()
		srv.EnableAudit(led)
		seq, hash := led.Head()
		fmt.Printf("audit ledger %s: chain verified, head #%d %s\n", ledgerDir, seq, hash)
	}

	var engine *obs.Engine
	if *sloSpec != "" {
		aliases := wire.SLOAliases("cloud",
			wire.MethodCloudInit, wire.MethodCloudUpdate, wire.MethodCloudSearch, wire.MethodCloudStats)
		for k, v := range audit.SLOAliases() {
			aliases[k] = v
		}
		objs, err := obs.ParseObjectives(*sloSpec, aliases)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		engine = obs.NewEngine(reg, objs, obs.EngineOptions{Logger: logger})
		defer engine.Run(0)()
		srv.AttachSLO(engine)
	}
	var prof *obs.Profiler
	if *dataDir != "" {
		prof, err = obs.NewProfiler(obs.ProfilerOptions{
			Dir:         filepath.Join(*dataDir, "profiles"),
			MaxCaptures: *profileMax,
			CPUDuration: *profileCPU,
			Registry:    reg,
			Logger:      logger,
		})
		if err != nil {
			return fmt.Errorf("profiler: %w", err)
		}
		if engine != nil {
			engine.OnBreach(func(st obs.SLOStatus) { prof.Trigger("slo-" + st.Name) })
		}
	} else if engine != nil {
		logger.Warn("continuous profiler disabled: -slo set without -data-dir, breaches will not capture profiles")
	}

	if *admin != "" {
		opts := obs.AdminOptions{
			Registry: reg,
			Traces:   srv.Traces(),
			Logger:   logger,
			SLO:      engine,
			Profiler: prof,
		}
		if led != nil {
			opts.Audit = led.AdminHandler()
		}
		adm, err := obs.StartAdminOpts(*admin, opts)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		fmt.Printf("slicer-cloud: admin endpoint on http://%s/metrics\n", adm.Addr())
	}
	if *dataDir != "" && *state != "" {
		return fmt.Errorf("-data-dir and -state are mutually exclusive (migrate by booting once with -state, shutting down, then switching to -data-dir)")
	}
	if *dataDir != "" {
		policy, interval, err := durable.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		stats, err := srv.EnableDurability(wire.DurabilityOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: interval,
			SnapshotEvery: *snapEvery,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			return fmt.Errorf("durability: %w", err)
		}
		fmt.Printf("recovered from %s: snapshot@%d, %d records replayed, %d skipped, %d truncated\n",
			*dataDir, stats.SnapshotIndex, stats.Replayed, stats.Skipped, stats.Truncated)
	}
	if *state != "" {
		if data, err := os.ReadFile(*state); err == nil {
			if err := srv.Restore(data); err != nil {
				return fmt.Errorf("restore state: %w", err)
			}
			fmt.Printf("restored cloud state from %s\n", *state)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("read state: %w", err)
		}
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("slicer-cloud: serving on %s\n", addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("slicer-cloud: shutting down")

	if *state != "" {
		data, err := srv.Snapshot()
		if err != nil {
			return fmt.Errorf("snapshot state: %w", err)
		}
		if data != nil {
			// Atomic and private: the state embeds the encrypted index and
			// ADS — never leave a torn or world-readable copy behind.
			if err := durable.AtomicWriteFile(*state, data, 0o600); err != nil {
				return fmt.Errorf("write state: %w", err)
			}
			fmt.Printf("persisted cloud state to %s\n", *state)
		}
	}
	return nil
}
